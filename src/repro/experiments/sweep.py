"""Parallel experiment sweep engine: process-pool fan-out of profile jobs.

Every figure/table driver in this package expresses its per-kernel profiling
work as :class:`ProfileJob` specs instead of looping over ``profiler.profile``
inline.  A job is fully self-contained -- it names the kernel through the
picklable :class:`KernelSpec` registry and carries its own backend/profiler
seeds -- so executing it in the driver process, a worker process, or another
machine produces bit-identical results.  :class:`SweepRunner` fans pending
jobs out across a process pool (``workers > 1``), memoises finished jobs in a
content-keyed on-disk cache, and returns results keyed by job id, which makes
assembly deterministic regardless of worker count or completion order.

Jobs default to ``result_mode="full"`` (a complete
:class:`~repro.core.profiler.FinGraVResult`, raw runs included), but every
driver whose ``*_from_results`` assembly never re-stitches the raw runs
registers its jobs with ``result_mode="slim"``: the worker then ships a
:class:`~repro.core.profiler.SlimFinGraVResult` -- bit-identical profiles
plus the summary/golden-run metadata -- through IPC and the on-disk cache,
cutting the pickled payload several-fold.  Slim jobs additionally declare
``profile_sections``: the subset of ``("ssp", "sse", "run")`` profiles the
driver's assembly actually reads (summary-only drivers such as table1
declare ``()``), so undeclared sections are never shipped -- and the
whole-run profile, the bulk of a long kernel's payload, is never even
stitched when no driver asks for it.  Drivers that *do* re-stitch
(Figure 5, the binning-margin ablation) pin ``result_mode="full"``.

On-disk cache entries are pickles in which every large
:class:`~repro.core.profile.ProfileColumns` (``>= spill_points`` LOIs) is
spilled to a sidecar ``<key>.npz`` next to the entry; loading replays the
pickle and maps the sidecar's arrays back in with ``mmap_mode="r"``, so a
cache hit touches only the pages it actually reads.  Cache entries are
keyed by :data:`_CACHE_SCHEMA` -- entries written by earlier schemas are
simply never looked up again and recompute cleanly.

A failing job no longer aborts the sweep: every pending job still runs, the
finished ones are cached and attached to the raised :class:`SweepJobError`
(``.completed`` / ``.failures``), and the error message names the failing
job id(s).

Command line::

    python -m repro.experiments.sweep --all --scale fast --workers 8
    python -m repro.experiments.sweep --experiments fig7 table1 --json out.json

Environment knobs picked up by :func:`default_runner` (used whenever a driver
is called without an explicit runner): ``FINGRAV_WORKERS`` (worker count,
default 1) and ``FINGRAV_PROFILE_CACHE`` (cache directory, default disabled).
``FINGRAV_RESULT_MODE`` (``slim`` / ``full``) overrides every driver's default
result mode at job-construction time -- it participates in the cache key, so
switching modes never replays a stale payload shape.
"""

from __future__ import annotations

import argparse
import hashlib
import itertools
import json
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.profile import ProfileColumns, load_npz_payload
from ..kernels.gemm import square_gemm
from ..kernels.workloads import cb_gemm, collective_suite, mb_gemv
from .common import ExperimentScale, default_scale, make_backend, make_profiler, scale_by_name

#: Bump when job execution semantics change, to invalidate on-disk caches.
#: Schema 3: columnar cache entries (profile columns spilled to a sidecar
#: ``.npz``) and section-aware jobs; schema-2 entries recompute cleanly.
_CACHE_SCHEMA = 3

#: Staging files older than this are considered orphaned by a dead writer.
_STALE_STAGING_S = 3600.0

#: Distinguishes staging files written concurrently by one process.
_STAGING_COUNTER = itertools.count()

#: Profiles with at least this many LOIs leave the cache pickle for the
#: sidecar ``.npz`` (overridable per runner and via ``FINGRAV_SPILL_POINTS``).
_SPILL_POINTS_DEFAULT = 4096

#: Persistent-id tag marking a spilled ProfileColumns inside a cache pickle.
_SPILL_TAG = "fingrav-columns"


# --------------------------------------------------------------------------- #
# Kernel registry: names -> factories, so jobs stay picklable.
# --------------------------------------------------------------------------- #
def _collective(name: str):
    for kernel in collective_suite():
        if kernel.name == name:
            return kernel
    raise KeyError(f"no collective kernel named {name!r}")


KERNEL_BUILDERS: dict[str, Callable[..., object]] = {
    "cb_gemm": cb_gemm,
    "mb_gemv": mb_gemv,
    "square_gemm": square_gemm,
    "collective": _collective,
}


@dataclass(frozen=True)
class KernelSpec:
    """A picklable, content-hashable recipe for building a kernel."""

    key: str
    args: tuple = ()
    kwargs: tuple[tuple[str, object], ...] = ()

    def build(self) -> object:
        try:
            builder = KERNEL_BUILDERS[self.key]
        except KeyError as exc:
            raise KeyError(f"unknown kernel builder {self.key!r}") from exc
        return builder(*self.args, **dict(self.kwargs))


def kernel_spec(key: str, *args: object, **kwargs: object) -> KernelSpec:
    """Convenience constructor: ``kernel_spec("cb_gemm", 4096)``."""
    return KernelSpec(key=key, args=tuple(args), kwargs=tuple(sorted(kwargs.items())))


@dataclass(frozen=True)
class ProfileJob:
    """One self-contained profiling job.

    A plain job runs the full FinGraV methodology on ``kernel``.  When
    ``interleave_seed`` is set the job instead measures the single-execution
    interleaved profile of ``kernel`` after ``preceding`` (the Figure-9
    scenarios) and returns a :class:`~repro.core.profile.FineGrainProfile`
    rather than a :class:`~repro.core.profiler.FinGraVResult`.
    """

    job_id: str
    kernel: KernelSpec
    runs: int
    backend_seed: int
    profiler_seed: int
    sampler: str = "averaging"
    synchronize: bool = True
    apply_binning: bool = True
    differentiate: bool = True
    max_additional_runs: int = 200
    preceding: tuple[tuple[KernelSpec, int], ...] = ()
    interleave_seed: int | None = None
    min_lois: int = 5
    max_runs: int | None = None
    #: "full" ships the complete FinGraVResult; "slim" ships the raw-run-free
    #: projection (see the module docstring).  Part of the cache key.
    result_mode: str = "full"
    #: Profile sections a slim result retains -- the subset of
    #: ``("ssp", "sse", "run")`` the driver's assembly reads; ``None`` keeps
    #: all three.  Ignored in full mode.  Part of the cache key.
    profile_sections: tuple[str, ...] | None = None


def configured_result_mode(default: str = "slim") -> str:
    """The result mode a driver should register its jobs with.

    ``FINGRAV_RESULT_MODE`` (``slim`` / ``full``) overrides the driver's
    default; anything else (including unset) keeps it.
    """
    override = os.environ.get("FINGRAV_RESULT_MODE", "").strip().lower()
    return override if override in ("slim", "full") else default


def execute_job(job: ProfileJob) -> object:
    """Run one job from scratch; deterministic in the job's seeds alone."""
    kernel = job.kernel.build()
    backend = make_backend(seed=job.backend_seed, sampler=job.sampler)
    profiler = make_profiler(
        backend,
        seed=job.profiler_seed,
        synchronize=job.synchronize,
        apply_binning=job.apply_binning,
        differentiate=job.differentiate,
        max_additional_runs=job.max_additional_runs,
        # Interleaved jobs return a bare profile; the study's own isolated
        # profiling stays full regardless of the job's shipping mode.
        result_mode=job.result_mode if job.interleave_seed is None else "full",
        profile_sections=job.profile_sections,
    )
    if job.interleave_seed is None:
        return profiler.profile(kernel, runs=job.runs)
    from ..analysis.interleaving import InterleavingStudy

    study = InterleavingStudy(
        backend, profiler=profiler, runs=job.runs, seed=job.interleave_seed
    )
    preceding = tuple((spec.build(), count) for spec, count in job.preceding)
    return study.interleaved_profile(
        kernel, preceding, runs=job.runs, min_lois=job.min_lois, max_runs=job.max_runs
    )


def job_key(job: ProfileJob) -> str:
    """Content hash of everything that determines a job's result (not its id)."""
    payload = asdict(job)
    payload.pop("job_id")
    digest = hashlib.sha256(
        f"{_CACHE_SCHEMA}:{sorted(payload.items())!r}".encode()
    ).hexdigest()
    return digest


# --------------------------------------------------------------------------- #
# Columnar cache codec: large ProfileColumns spill to a sidecar .npz.
# --------------------------------------------------------------------------- #
class _ColumnSpillPickler(pickle.Pickler):
    """Pickles a cache entry, diverting large :class:`ProfileColumns`.

    Every ``ProfileColumns`` holding at least ``spill_points`` LOIs is
    replaced by a persistent id and collected on :attr:`spilled`; the caller
    writes those columns' arrays to the sidecar ``.npz``.  Shared column
    objects (one profile referenced from several places) spill once.
    """

    def __init__(self, handle, spill_points: int) -> None:
        super().__init__(handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._spill_points = spill_points
        self._indices: dict[int, int] = {}
        self.spilled: list[ProfileColumns] = []

    def persistent_id(self, obj: object) -> tuple[str, int] | None:
        if not isinstance(obj, ProfileColumns) or len(obj) < self._spill_points:
            return None
        index = self._indices.get(id(obj))
        if index is None:
            index = len(self.spilled)
            self._indices[id(obj)] = index
            self.spilled.append(obj)
        return (_SPILL_TAG, index)


class _ColumnSpillUnpickler(pickle.Unpickler):
    """Loads a cache entry, mapping spilled columns back from the sidecar.

    The sidecar is opened lazily (entries without spilled columns never touch
    it) with ``mmap_mode="r"``, so the replayed profile's arrays are memory
    maps: a cache hit faults in only the pages a consumer actually reads.
    """

    def __init__(self, handle, sidecar: Path) -> None:
        super().__init__(handle)
        self._sidecar = sidecar
        self._payloads: dict[int, dict[str, np.ndarray]] | None = None
        self._loaded: dict[int, ProfileColumns] = {}

    def persistent_load(self, pid: object) -> ProfileColumns:
        if not (isinstance(pid, tuple) and len(pid) == 2 and pid[0] == _SPILL_TAG):
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        index = int(pid[1])
        columns = self._loaded.get(index)
        if columns is None:
            if self._payloads is None:
                members = load_npz_payload(self._sidecar, mmap_mode="r")
                self._payloads = {}
                for name, array in members.items():
                    prefix, _, key = name.partition("/")
                    self._payloads.setdefault(int(prefix), {})[key] = array
            columns = ProfileColumns.from_payload(self._payloads[index])
            self._loaded[index] = columns
        return columns


def _write_entry(result: object, handle, spill_points: int) -> list[ProfileColumns]:
    """Pickle ``result`` into ``handle``; return the columns that spilled."""
    pickler = _ColumnSpillPickler(handle, spill_points)
    pickler.dump(result)
    return pickler.spilled


def _write_sidecar(spilled: Sequence[ProfileColumns], handle) -> None:
    """Write the spilled columns' arrays as ``{index}/{key}`` npz members."""
    members: dict[str, np.ndarray] = {}
    for index, columns in enumerate(spilled):
        for key, array in columns.to_payload().items():
            members[f"{index}/{key}"] = array
    np.savez(handle, **members)


def _execute_job_guarded(job: ProfileJob) -> tuple[object, str | None]:
    """Run one job, trapping its failure instead of poisoning the whole map.

    Returns ``(result, None)`` on success and ``(None, description)`` on
    failure; the description carries the exception type, message and
    traceback so the sweep can re-raise with full context after the
    surviving jobs are collected.
    """
    try:
        return execute_job(job), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"


class SweepJobError(RuntimeError):
    """One or more sweep jobs failed (the rest completed and were cached).

    ``failures`` maps the failing job ids to their error descriptions;
    ``completed`` holds the results of every job that did finish (cache
    hits included), so callers can salvage partial sweeps.
    """

    def __init__(self, failures: Mapping[str, str], completed: Mapping[str, object]) -> None:
        self.failures = dict(failures)
        self.completed = dict(completed)
        #: Experiments :func:`run_sweep` still assembled from the completed
        #: jobs (set by run_sweep before re-raising; empty for runner-level
        #: callers).
        self.assembled: dict[str, object] = {}
        names = ", ".join(sorted(self.failures))
        first = next(iter(self.failures.values())).splitlines()[0]
        super().__init__(
            f"{len(self.failures)} sweep job(s) failed ({names}); "
            f"{len(self.completed)} completed and were kept. First failure: {first}"
        )


# --------------------------------------------------------------------------- #
# The runner.
# --------------------------------------------------------------------------- #
class SweepRunner:
    """Executes profile jobs, optionally in parallel and through a disk cache.

    ``workers <= 1`` runs jobs inline (no subprocesses); ``workers > 1`` fans
    pending jobs out over a :class:`ProcessPoolExecutor`.  Because jobs are
    independent and internally seeded, results are identical for any worker
    count; a determinism test pins this.  When ``cache_dir`` is set, finished
    jobs are stored under their content key and replayed on later sweeps:
    each entry is a pickle whose large profile columns (``>= spill_points``
    LOIs) live in a sidecar ``<key>.npz`` and are mapped back lazily with
    ``mmap_mode="r"`` on load.  ``spill_points`` defaults to
    ``FINGRAV_SPILL_POINTS`` or :data:`_SPILL_POINTS_DEFAULT`.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        spill_points: int | None = None,
    ) -> None:
        self.workers = max(int(workers), 1)
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if spill_points is None:
            try:
                spill_points = int(
                    os.environ.get("FINGRAV_SPILL_POINTS", "") or _SPILL_POINTS_DEFAULT
                )
            except ValueError:
                spill_points = _SPILL_POINTS_DEFAULT
        self.spill_points = max(int(spill_points), 1)
        self.cache_hits = 0

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[ProfileJob]) -> dict[str, object]:
        """Execute jobs (deduplicated by id) and return {job_id: result}.

        Job failures are collected, not fatal per-job: every pending job
        still executes, finished results are cached, and a
        :class:`SweepJobError` naming the failing job id(s) is raised at the
        end with the completed results attached.
        """
        unique: dict[str, ProfileJob] = {}
        for job in jobs:
            existing = unique.get(job.job_id)
            if existing is not None:
                if existing != job:
                    raise ValueError(f"conflicting jobs share id {job.job_id!r}")
                continue
            unique[job.job_id] = job

        self._sweep_stale_staging()
        results: dict[str, object] = {}
        pending: list[ProfileJob] = []
        for job in unique.values():
            cached = self._cache_load(job)
            if cached is not None:
                results[job.job_id] = cached
                self.cache_hits += 1
            else:
                pending.append(job)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                outcomes = [_execute_job_guarded(job) for job in pending]
            else:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pending))
                ) as pool:
                    outcomes = list(pool.map(_execute_job_guarded, pending))
            # Every job ran to an outcome; keep and cache the survivors
            # before surfacing any failure, so a retry replays them for free.
            failures: dict[str, str] = {}
            for job, (outcome, error) in zip(pending, outcomes):
                if error is None:
                    results[job.job_id] = outcome
                    self._cache_store(job, outcome)
                else:
                    failures[job.job_id] = error
            if failures:
                raise SweepJobError(failures, results)
        return results

    # ------------------------------------------------------------------ #
    def _cache_path(self, job: ProfileJob) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{job_key(job)}.pkl"

    def _cache_load(self, job: ProfileJob) -> object | None:
        path = self._cache_path(job)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return _ColumnSpillUnpickler(handle, path.with_suffix(".npz")).load()
        except Exception:
            return None  # corrupt entry or sidecar: fall through to recompute

    def _cache_store(self, job: ProfileJob, result: object) -> None:
        path = self._cache_path(job)
        if path is None:
            return
        # The staging names are unique per writer (pid + in-process counter):
        # two sweeps sharing FINGRAV_PROFILE_CACHE previously staged to the
        # same `<key>.tmp` and could interleave writes, atomically renaming a
        # corrupt mix of both into place.  The sidecar shares the suffix and
        # is renamed into place *before* the pickle, so a reader that sees
        # the new pickle always finds a sidecar at least as new.
        sidecar = path.with_suffix(".npz")
        suffix = f".{os.getpid()}-{next(_STAGING_COUNTER)}.tmp"
        staging = path.with_name(path.name + suffix)
        sidecar_staging = sidecar.with_name(sidecar.name + suffix)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with staging.open("wb") as handle:
                spilled = _write_entry(result, handle, self.spill_points)
            if spilled:
                with sidecar_staging.open("wb") as handle:
                    _write_sidecar(spilled, handle)
                sidecar_staging.replace(sidecar)
            staging.replace(path)
        except Exception:
            pass  # the cache is an optimisation; never fail a sweep over it
        finally:
            # A failed write (or a replace that raced a directory removal)
            # must not leave its staging files behind.
            for stray in (staging, sidecar_staging):
                try:
                    stray.unlink(missing_ok=True)
                except OSError:
                    pass

    def _sweep_stale_staging(self) -> None:
        """Remove staging strays orphaned by crashed/killed writers.

        Only files matching the staging pattern *and* untouched for
        :data:`_STALE_STAGING_S` are removed, so concurrent sweeps' live
        staging files are never disturbed.
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        cutoff = time.time() - _STALE_STAGING_S
        for pattern in ("*.pkl.*.tmp", "*.npz.*.tmp"):
            for stray in self.cache_dir.glob(pattern):
                try:
                    if stray.stat().st_mtime < cutoff:
                        stray.unlink(missing_ok=True)
                except OSError:
                    continue


def default_runner() -> SweepRunner:
    """Runner configured from FINGRAV_WORKERS / FINGRAV_PROFILE_CACHE."""
    workers = int(os.environ.get("FINGRAV_WORKERS", "1") or 1)
    cache = os.environ.get("FINGRAV_PROFILE_CACHE") or None
    return SweepRunner(workers=workers, cache_dir=cache)


def run_jobs(
    jobs: Sequence[ProfileJob], runner: SweepRunner | None = None
) -> dict[str, object]:
    """Execute jobs with the given runner (or a fresh default one)."""
    return (runner or default_runner()).run(jobs)


# --------------------------------------------------------------------------- #
# The full-suite sweep (python -m repro.experiments.sweep).
# --------------------------------------------------------------------------- #
EXPERIMENT_NAMES: tuple[str, ...] = (
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "table1", "table2", "ablations",
)


def run_sweep(
    experiments: Sequence[str],
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> dict[str, object]:
    """Run the requested experiment drivers through one shared job pool.

    All drivers' jobs are collected first and executed in a single
    :meth:`SweepRunner.run` call, so the pool is saturated across experiment
    boundaries; each driver then assembles its result object from the shared
    result dictionary.  Returns {experiment name: result object}.

    A failing job does not discard the rest of the sweep: every experiment
    whose jobs all completed is still assembled, and the
    :class:`SweepJobError` re-raised at the end carries those assembled
    results on ``.assembled`` (plus the raw completed job results on
    ``.completed``), so callers -- including the CLI -- can salvage the
    finished work even with the on-disk cache disabled.
    """
    from . import ablations, fig5, fig6, fig7, fig8, fig9, fig10, table1, table2

    scale = scale or default_scale()
    runner = runner or default_runner()
    requested = list(dict.fromkeys(experiments))
    unknown = [name for name in requested if name not in EXPERIMENT_NAMES]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}; pick from {EXPERIMENT_NAMES}")

    needs = set(requested)
    if "table2" in needs:
        # Table II composes Figure 7 and Figure 9; make sure their jobs ride
        # along so the assembly below can reuse them.
        needs.update(("fig7", "fig9"))

    jobs: list[ProfileJob] = []
    if "fig5" in needs:
        jobs += fig5.fig5_jobs(scale=scale)
    if "fig6" in needs:
        jobs += fig6.fig6_jobs(scale=scale)
    if "fig7" in needs:
        jobs += fig7.fig7_jobs(scale=scale)
    if "fig8" in needs:
        jobs += fig8.fig8_jobs(scale=scale)
    if "fig9" in needs:
        jobs += fig9.fig9_jobs(scale=scale)
    if "fig10" in needs:
        jobs += fig10.fig10_jobs(scale=scale)
    if "table1" in needs:
        jobs += table1.table1_jobs(scale=scale)
    if "ablations" in needs:
        jobs += ablations.sampler_ablation_jobs(scale=scale)
        jobs += ablations.binning_margin_jobs(scale=scale)

    job_error: SweepJobError | None = None
    try:
        results = runner.run(jobs)
    except SweepJobError as error:
        results = error.completed
        job_error = error

    def assemble(name: str, build) -> object | None:
        # With a partial job pool an experiment whose job is missing raises
        # KeyError during assembly; skip it (its failure is already recorded
        # on the SweepJobError being re-raised below).
        if job_error is None:
            return build()
        try:
            return build()
        except KeyError:
            return None

    assembled: dict[str, object] = {}
    if "fig5" in needs:
        assembled["fig5"] = assemble("fig5", lambda: fig5.fig5_from_results(results, scale=scale))
    if "fig6" in needs:
        assembled["fig6"] = assemble("fig6", lambda: fig6.fig6_from_results(results, scale=scale))
    if "fig7" in needs:
        assembled["fig7"] = assemble("fig7", lambda: fig7.fig7_from_results(results, scale=scale))
    if "fig8" in needs:
        assembled["fig8"] = assemble("fig8", lambda: fig8.fig8_from_results(results, scale=scale))
    if "fig9" in needs:
        assembled["fig9"] = assemble("fig9", lambda: fig9.fig9_from_results(results, scale=scale))
    if "fig10" in needs:
        assembled["fig10"] = assemble("fig10", lambda: fig10.fig10_from_results(results, scale=scale))
    if "table1" in needs:
        assembled["table1"] = assemble("table1", lambda: table1.table1_from_results(results, scale=scale))
    if "table2" in requested:
        if assembled.get("fig7") is not None and assembled.get("fig9") is not None:
            assembled["table2"] = assemble("table2", lambda: table2.run_table2(
                scale=scale, fig7=assembled["fig7"], fig9=assembled["fig9"]
            ))
        else:
            assembled["table2"] = None
    if "ablations" in needs:
        sampler = assemble(
            "ablations", lambda: ablations.sampler_ablation_from_results(results, scale=scale)
        )
        margins = assemble(
            "ablations", lambda: ablations.binning_margin_from_results(results, scale=scale)
        )
        if sampler is None or margins is None:
            assembled["ablations"] = None
        else:
            assembled["ablations"] = {
                "sampler": sampler,
                "margins": margins,
                # Coverage and drift are raw-record studies (backend.run
                # loops, no FinGraV profile), so they run inline at their
                # fixed small budgets instead of through the profile-job pool.
                "coarse_coverage": ablations.run_coarse_coverage(scale=scale),
                "drift": ablations.run_drift_sensitivity(scale=scale),
            }
    final = {
        name: assembled[name]
        for name in requested
        if assembled.get(name) is not None
    }
    if job_error is not None:
        job_error.assembled = final
        raise job_error
    return final


def _summarize(name: str, result: object) -> object:
    """JSON-friendly summary of one experiment's result object."""
    if name == "ablations":
        sampler = result["sampler"]
        return {
            "sampler": sampler.to_row(),
            "margins": result["margins"].rows(),
            "coarse_coverage": result["coarse_coverage"].to_row(),
            "drift": result["drift"].rows(),
        }
    if hasattr(result, "summary"):
        return result.summary()
    if hasattr(result, "rows"):
        return result.rows()
    return repr(result)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep",
        description="Run the paper's experiment suite through the parallel sweep engine.",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment driver")
    parser.add_argument(
        "--experiments", nargs="+", default=(), metavar="NAME",
        help=f"drivers to run (any of: {', '.join(EXPERIMENT_NAMES)})",
    )
    parser.add_argument(
        "--scale", default=None,
        help="run budgets: tiny, fast or paper (default: FINGRAV_SCALE or fast)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: FINGRAV_WORKERS or 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="content-keyed on-disk profile cache (default: FINGRAV_PROFILE_CACHE)",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write summaries to a JSON file")
    parser.add_argument("--list", action="store_true", help="list experiment names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENT_NAMES:
            print(name)
        return 0
    requested = list(EXPERIMENT_NAMES) if args.all else list(args.experiments)
    if not requested:
        parser.error("nothing to run: pass --all or --experiments")

    scale = scale_by_name(args.scale) if args.scale else default_scale()
    workers = args.workers if args.workers is not None else int(
        os.environ.get("FINGRAV_WORKERS", "1") or 1
    )
    cache = args.cache if args.cache is not None else (
        os.environ.get("FINGRAV_PROFILE_CACHE") or None
    )
    runner = SweepRunner(workers=workers, cache_dir=cache)

    print(f"[sweep] scale={scale.name} workers={runner.workers} "
          f"cache={runner.cache_dir or 'off'} experiments={' '.join(requested)}")
    begin = time.perf_counter()
    job_error: SweepJobError | None = None
    try:
        results = run_sweep(requested, scale=scale, runner=runner)
    except SweepJobError as error:
        # Salvage: report every experiment that still assembled, then exit
        # nonzero naming the failing job(s).
        results = error.assembled
        job_error = error
    elapsed = time.perf_counter() - begin

    summaries = {}
    for name, result in results.items():
        summary = _summarize(name, result)
        summaries[name] = summary
        print(f"\n=== {name} ===")
        print(json.dumps(summary, indent=2, default=str))
    print(f"\n[sweep] done in {elapsed:.1f}s "
          f"({runner.cache_hits} cache hits, {runner.workers} workers)")
    if job_error is not None:
        print(f"\n[sweep] PARTIAL: {job_error}")
        for job_id, description in sorted(job_error.failures.items()):
            print(f"[sweep]   {job_id}: {description.splitlines()[0]}")

    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {
                "scale": scale.name,
                "workers": runner.workers,
                "seconds": elapsed,
                "cache_hits": runner.cache_hits,
                "summaries": summaries,
                "failures": dict(job_error.failures) if job_error else {},
            },
            indent=2,
            default=str,
        ) + "\n")
        print(f"[sweep] summaries written to {path}")
    return 0 if job_error is None else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    # Delegate to the canonical module instance so worker processes always
    # unpickle against repro.experiments.sweep, not a __main__ copy.
    from repro.experiments.sweep import main as _canonical_main

    raise SystemExit(_canonical_main())


__all__ = [
    "KernelSpec",
    "kernel_spec",
    "ProfileJob",
    "configured_result_mode",
    "execute_job",
    "job_key",
    "SweepJobError",
    "SweepRunner",
    "default_runner",
    "run_jobs",
    "run_sweep",
    "EXPERIMENT_NAMES",
    "main",
]
