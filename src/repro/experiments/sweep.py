"""Parallel experiment sweep engine: process-pool fan-out of profile jobs.

Every figure/table driver in this package expresses its per-kernel profiling
work as :class:`ProfileJob` specs instead of looping over ``profiler.profile``
inline.  A job is fully self-contained -- it names the kernel through the
picklable :class:`KernelSpec` registry and carries its own backend/profiler
seeds -- so executing it in the driver process, a worker process, or another
machine produces bit-identical results.  :class:`SweepRunner` fans pending
jobs out across a process pool (``workers > 1``), memoises finished jobs in a
content-keyed on-disk cache, and returns results keyed by job id, which makes
assembly deterministic regardless of worker count or completion order.

Jobs default to ``result_mode="full"`` (a complete
:class:`~repro.core.profiler.FinGraVResult`, raw runs included), but every
driver whose ``*_from_results`` assembly never re-stitches the raw runs
registers its jobs with ``result_mode="slim"``: the worker then ships a
:class:`~repro.core.profiler.SlimFinGraVResult` -- bit-identical profiles
plus the summary/golden-run metadata -- through IPC and the on-disk cache,
cutting the pickled payload several-fold.  Slim jobs additionally declare
``profile_sections``: the subset of ``("ssp", "sse", "run")`` profiles the
driver's assembly actually reads (summary-only drivers such as table1
declare ``()``), so undeclared sections are never shipped -- and the
whole-run profile, the bulk of a long kernel's payload, is never even
stitched when no driver asks for it.  Drivers that *do* re-stitch
(Figure 5, the binning-margin ablation) pin ``result_mode="full"``.

On-disk cache entries are pickles in which every large
:class:`~repro.core.profile.ProfileColumns` (``>= spill_points`` LOIs) is
spilled to a sidecar ``<key>.npz`` next to the entry; loading replays the
pickle and maps the sidecar's arrays back in with ``mmap_mode="r"``, so a
cache hit touches only the pages it actually reads.  Cache entries are
keyed by :data:`_CACHE_SCHEMA` -- entries written by earlier schemas are
simply never looked up again and recompute cleanly.

Execution is *supervised* (see ``docs/sweep.md`` for the full fault model).
With ``workers > 1`` the runner dispatches jobs one at a time through
``submit``/``wait`` scheduling instead of a blocking ``pool.map`` barrier:

- every dispatched job carries a wall-clock deadline
  (:attr:`SweepConfig.job_timeout_s` / ``FINGRAV_JOB_TIMEOUT``); a watchdog
  kills-and-rebuilds the pool around a hung worker and requeues the other
  in-flight jobs, so one wedged job costs one retry, not the sweep;
- a crashed worker (``BrokenProcessPool`` -- e.g. a segfaulting compiled
  provider) likewise triggers a bounded pool rebuild and charges each
  affected job one retry;
- transient failures (the taxonomy in :func:`classify_retryable`: broken
  pools, watchdog timeouts, ``OSError`` I/O hiccups, injected transients)
  are retried up to :attr:`SweepConfig.max_retries` times with exponential
  backoff and deterministic per-(job, attempt) jitter; genuinely-fatal job
  errors surface immediately as structured :class:`JobFailure` records,
  formatted traceback included.

A failing job still never aborts the sweep: every pending job runs to a
terminal outcome, finished results are cached and attached to the raised
:class:`SweepJobError` (``.completed`` / ``.failures``).  The cache tier
degrades rather than aborts everywhere: a truncated/corrupt entry (pickle or
sidecar) is quarantined to ``<entry>.corrupt`` and recomputed, and a failed
store (``ENOSPC``, lock trouble) is recorded and ignored.  Each run emits a
machine-checkable ``manifest.json`` next to the cache (per-job
hit/recomputed/failed status, retry/timeout/quarantine counts, timings and
engine+provider provenance) so operators can see what was reused, what was
recomputed and what misbehaved.  The deterministic fault-injection harness in
:mod:`repro.testing.faults` (``FINGRAV_FAULT_PLAN``) drives all of this in
tests and the CI fault-smoke leg.

Command line::

    python -m repro.experiments.sweep --all --scale fast --workers 8
    python -m repro.experiments.sweep --experiments fig7 table1 --json out.json

Environment knobs picked up by :func:`default_runner` (used whenever a driver
is called without an explicit runner): ``FINGRAV_WORKERS`` (worker count,
default 1) and ``FINGRAV_PROFILE_CACHE`` (cache directory, default disabled).
``FINGRAV_RESULT_MODE`` (``slim`` / ``full``) overrides every driver's default
result mode at job-construction time -- it participates in the cache key, so
switching modes never replays a stale payload shape.  The fault-model knobs
(``FINGRAV_JOB_TIMEOUT``, ``FINGRAV_MAX_RETRIES``, ``FINGRAV_RETRY_BACKOFF``)
are read by :meth:`SweepConfig.from_env`, and ``FINGRAV_FAULT_PLAN`` names a
fault-injection plan honoured by the dispatcher and its workers.
"""

from __future__ import annotations

import argparse
import hashlib
import heapq
import itertools
import json
import os
import pickle
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.profile import ProfileColumns, load_npz_payload
from ..kernels.gemm import square_gemm
from ..kernels.workloads import cb_gemm, collective_suite, mb_gemv
from ..testing import faults
from .common import (
    ExperimentScale,
    default_scale,
    execution_provenance,
    make_backend,
    make_profiler,
    scale_by_name,
)

#: Bump when job execution semantics change, to invalidate on-disk caches.
#: Schema 4: adaptive-collection-aware jobs (``ProfileJob.adaptive`` enters
#: the key; results carry the collection audit in their metadata/summary).
#: Schema-3 entries recompute cleanly.
_CACHE_SCHEMA = 4

#: Staging files older than this are considered orphaned by a dead writer.
_STALE_STAGING_S = 3600.0

#: Distinguishes staging files written concurrently by one process.
_STAGING_COUNTER = itertools.count()

#: Profiles with at least this many LOIs leave the cache pickle for the
#: sidecar ``.npz`` (overridable per runner and via ``FINGRAV_SPILL_POINTS``).
_SPILL_POINTS_DEFAULT = 4096

#: Persistent-id tag marking a spilled ProfileColumns inside a cache pickle.
_SPILL_TAG = "fingrav-columns"


# --------------------------------------------------------------------------- #
# Kernel registry: names -> factories, so jobs stay picklable.
# --------------------------------------------------------------------------- #
def _collective(name: str):
    for kernel in collective_suite():
        if kernel.name == name:
            return kernel
    raise KeyError(f"no collective kernel named {name!r}")


KERNEL_BUILDERS: dict[str, Callable[..., object]] = {
    "cb_gemm": cb_gemm,
    "mb_gemv": mb_gemv,
    "square_gemm": square_gemm,
    "collective": _collective,
}


@dataclass(frozen=True)
class KernelSpec:
    """A picklable, content-hashable recipe for building a kernel."""

    key: str
    args: tuple = ()
    kwargs: tuple[tuple[str, object], ...] = ()

    def build(self) -> object:
        try:
            builder = KERNEL_BUILDERS[self.key]
        except KeyError as exc:
            raise KeyError(f"unknown kernel builder {self.key!r}") from exc
        return builder(*self.args, **dict(self.kwargs))


def kernel_spec(key: str, *args: object, **kwargs: object) -> KernelSpec:
    """Convenience constructor: ``kernel_spec("cb_gemm", 4096)``."""
    return KernelSpec(key=key, args=tuple(args), kwargs=tuple(sorted(kwargs.items())))


@dataclass(frozen=True)
class ProfileJob:
    """One self-contained profiling job.

    A plain job runs the full FinGraV methodology on ``kernel``.  When
    ``interleave_seed`` is set the job instead measures the single-execution
    interleaved profile of ``kernel`` after ``preceding`` (the Figure-9
    scenarios) and returns a :class:`~repro.core.profile.FineGrainProfile`
    rather than a :class:`~repro.core.profiler.FinGraVResult`.
    """

    job_id: str
    kernel: KernelSpec
    runs: int
    backend_seed: int
    profiler_seed: int
    sampler: str = "averaging"
    synchronize: bool = True
    apply_binning: bool = True
    differentiate: bool = True
    max_additional_runs: int = 200
    preceding: tuple[tuple[KernelSpec, int], ...] = ()
    interleave_seed: int | None = None
    min_lois: int = 5
    max_runs: int | None = None
    #: "full" ships the complete FinGraVResult; "slim" ships the raw-run-free
    #: projection (see the module docstring).  Part of the cache key.
    result_mode: str = "full"
    #: Profile sections a slim result retains -- the subset of
    #: ``("ssp", "sse", "run")`` the driver's assembly reads; ``None`` keeps
    #: all three.  Ignored in full mode.  Part of the cache key.
    profile_sections: tuple[str, ...] | None = None
    #: Collect runs adaptively: stop early once the golden-run SSP/SSE
    #: confidence intervals converge (see ``docs/profiler.md``).  ``False``
    #: is the paper's fixed-count collection.  Part of the cache key; the
    #: remaining adaptive knobs (``convergence_rtol``/``min_runs``/
    #: ``checkpoint_every``) stay pinned at their ``ProfilerConfig`` defaults
    #: under the sweep (recorded ``statics`` exemptions).
    adaptive: bool = False


def configured_result_mode(default: str = "slim") -> str:
    """The result mode a driver should register its jobs with.

    ``FINGRAV_RESULT_MODE`` (``slim`` / ``full``) overrides the driver's
    default; anything else (including unset) keeps it.
    """
    override = os.environ.get("FINGRAV_RESULT_MODE", "").strip().lower()
    return override if override in ("slim", "full") else default


def configured_adaptive(default: bool = False) -> bool:
    """Whether a driver should register its jobs with adaptive collection.

    ``FINGRAV_ADAPTIVE`` (``1``/``true``/``on`` vs ``0``/``false``/``off``)
    overrides the driver's default; anything else (including unset) keeps it.
    """
    override = os.environ.get("FINGRAV_ADAPTIVE", "").strip().lower()
    if override in ("1", "true", "on", "yes"):
        return True
    if override in ("0", "false", "off", "no"):
        return False
    return default


def execute_job(job: ProfileJob) -> object:
    """Run one job from scratch; deterministic in the job's seeds alone."""
    kernel = job.kernel.build()
    backend = make_backend(seed=job.backend_seed, sampler=job.sampler)
    profiler = make_profiler(
        backend,
        seed=job.profiler_seed,
        synchronize=job.synchronize,
        apply_binning=job.apply_binning,
        differentiate=job.differentiate,
        max_additional_runs=job.max_additional_runs,
        # Interleaved jobs return a bare profile; the study's own isolated
        # profiling stays full regardless of the job's shipping mode, and its
        # run counting is LOI-driven rather than convergence-driven.
        result_mode=job.result_mode if job.interleave_seed is None else "full",
        profile_sections=job.profile_sections,
        adaptive=job.adaptive if job.interleave_seed is None else False,
    )
    if job.interleave_seed is None:
        return profiler.profile(kernel, runs=job.runs)
    from ..analysis.interleaving import InterleavingStudy

    study = InterleavingStudy(
        backend, profiler=profiler, runs=job.runs, seed=job.interleave_seed
    )
    preceding = tuple((spec.build(), count) for spec, count in job.preceding)
    return study.interleaved_profile(
        kernel, preceding, runs=job.runs, min_lois=job.min_lois, max_runs=job.max_runs
    )


#: Scalar types whose ``repr`` is canonical and type-stable across processes
#: and environments -- the only scalars a cache-key payload may carry.
_KEY_SAFE_SCALARS = (bool, int, str, bytes, type(None))


def _require_canonical(field_name: str, value: object) -> None:
    """Reject repr-unstable values before they enter the content key.

    The key is a hash of ``repr``, so every payload value must have one
    canonical, type-stable spelling: floats drift with environment-dependent
    rounding (and ``1.0 != 1`` only sometimes), sets with iteration order,
    and arbitrary objects with their default ``<... at 0x...>`` repr.  The
    check is additive -- values that pass hash exactly as before, so
    existing warm caches stay valid.
    """
    if isinstance(value, _KEY_SAFE_SCALARS):
        return
    if isinstance(value, tuple):
        for item in value:
            _require_canonical(field_name, item)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"job_key: field {field_name!r} carries a dict keyed by "
                    f"{type(key).__name__}; cache-key dicts must be "
                    "str-keyed so sorting them is total and stable"
                )
            _require_canonical(field_name, item)
        return
    raise TypeError(
        f"job_key: field {field_name!r} carries a {type(value).__name__} "
        f"({value!r}), which has no canonical type-stable repr; cache keys "
        "accept None/bool/int/str/bytes and tuples or str-keyed dicts of "
        "those (floats drift with rounding, sets with iteration order)"
    )


def job_key(job: ProfileJob) -> str:
    """Content hash of everything that determines a job's result (not its id)."""
    payload = asdict(job)
    payload.pop("job_id")
    for name, value in payload.items():
        _require_canonical(name, value)
    digest = hashlib.sha256(
        f"{_CACHE_SCHEMA}:{sorted(payload.items())!r}".encode()
    ).hexdigest()
    return digest


# --------------------------------------------------------------------------- #
# The fault model: config knobs, retry taxonomy, structured failures.
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepConfig:
    """Fault-model knobs for supervised sweep execution.

    ``job_timeout_s`` is the per-job wall-clock watchdog (None disables it;
    it only protects pool execution -- an inline ``workers=1`` sweep has no
    process boundary to kill across).  Transient failures are retried up to
    ``max_retries`` times per job with exponential backoff
    (``backoff_base_s * 2**attempt`` capped at ``backoff_cap_s``, plus
    deterministic per-(job, attempt) jitter).  ``max_pool_rebuilds`` bounds
    how many times a sweep will rebuild its pool around crashes/hangs before
    declaring the remaining work failed, which guarantees termination even
    under a pathological fault plan.
    """

    job_timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    max_pool_rebuilds: int = 8

    def __post_init__(self) -> None:
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ValueError(f"job_timeout_s must be positive or None, got {self.job_timeout_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_cap_s < 0:
            raise ValueError(f"backoff_cap_s must be >= 0, got {self.backoff_cap_s}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}")

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "SweepConfig":
        """Config from ``FINGRAV_JOB_TIMEOUT`` / ``FINGRAV_MAX_RETRIES`` /
        ``FINGRAV_RETRY_BACKOFF`` (unset keeps each default; a timeout of
        ``0`` / ``none`` / ``off`` disables the watchdog)."""
        env = os.environ if environ is None else environ
        kwargs: dict[str, object] = {}
        raw = env.get("FINGRAV_JOB_TIMEOUT", "").strip().lower()
        if raw:
            if raw in ("none", "off", "0"):
                kwargs["job_timeout_s"] = None
            else:
                try:
                    kwargs["job_timeout_s"] = float(raw)
                except ValueError as exc:
                    raise ValueError(
                        f"FINGRAV_JOB_TIMEOUT must be a number of seconds, got {raw!r}"
                    ) from exc
        raw = env.get("FINGRAV_MAX_RETRIES", "").strip()
        if raw:
            try:
                kwargs["max_retries"] = int(raw)
            except ValueError as exc:
                raise ValueError(
                    f"FINGRAV_MAX_RETRIES must be an integer, got {raw!r}"
                ) from exc
        raw = env.get("FINGRAV_RETRY_BACKOFF", "").strip()
        if raw:
            try:
                kwargs["backoff_base_s"] = float(raw)
            except ValueError as exc:
                raise ValueError(
                    f"FINGRAV_RETRY_BACKOFF must be a number of seconds, got {raw!r}"
                ) from exc
        return cls(**kwargs)


def classify_retryable(exc: BaseException) -> bool:
    """The retry taxonomy: transient (retry with backoff) vs fatal.

    Retryable: a broken pool (the worker died under the job -- its retry runs
    in a fresh worker), watchdog timeouts, ``OSError`` (cache/file I/O
    hiccups such as ``ENOSPC`` or lock contention inside the job), and the
    fault harness's explicitly-transient injections.  Everything else --
    ``KeyError`` from a bad kernel spec, ``ValueError`` from bad config,
    arbitrary bugs -- is a genuine job failure: retrying a deterministic job
    re-raises it, so it fails fast instead.
    """
    if isinstance(exc, faults.TransientInjectedFault):
        return True
    if isinstance(exc, faults.InjectedFault):
        return False
    return isinstance(exc, (BrokenExecutor, TimeoutError, OSError))


@dataclass(frozen=True)
class JobFailure:
    """Structured description of one job's terminal failure.

    Carries the exception type/message *and* the formatted traceback (so a
    failure that happened in a worker process three retries ago is still
    debuggable from the raised :class:`SweepJobError`), plus the retry
    classification and how many attempts the job consumed.
    """

    exc_type: str
    message: str
    traceback: str = ""
    retryable: bool = False
    attempts: int = 1

    @classmethod
    def from_exception(cls, exc: BaseException, attempts: int = 1) -> "JobFailure":
        formatted = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback=formatted,
            retryable=classify_retryable(exc),
            attempts=attempts,
        )

    @classmethod
    def from_description(cls, text: str) -> "JobFailure":
        """Adopt a legacy ``"Type: message\\ntraceback"`` failure string."""
        head, _, trailer = str(text).partition("\n")
        exc_type, sep, message = head.partition(": ")
        if not sep:
            exc_type, message = "Error", head
        return cls(exc_type=exc_type, message=message, traceback=trailer)

    def with_attempts(self, attempts: int) -> "JobFailure":
        return replace(self, attempts=attempts)

    @property
    def summary_line(self) -> str:
        message = self.message.splitlines()[0] if self.message else ""
        return f"{self.exc_type}: {message}"

    def describe(self) -> str:
        kind = "retryable" if self.retryable else "fatal"
        header = f"{self.summary_line} [{kind}, after {self.attempts} attempt(s)]"
        return f"{header}\n{self.traceback}" if self.traceback else header

    def __str__(self) -> str:
        return self.describe()


def backoff_delay(
    job_id: str, attempt: int, base_s: float, cap_s: float
) -> float:
    """Exponential backoff with deterministic jitter.

    ``base * 2**attempt`` plus a jitter in ``[0, base)`` derived from a hash
    of ``(job_id, attempt)`` -- different jobs desynchronise their retries,
    yet the same sweep replays the same delays.  Capped at ``cap_s``.
    """
    if base_s <= 0:
        return 0.0
    digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2.0**64 * base_s
    return min(base_s * (2.0**attempt) + jitter, cap_s)


# --------------------------------------------------------------------------- #
# Columnar cache codec: large ProfileColumns spill to a sidecar .npz.
# --------------------------------------------------------------------------- #
class _ColumnSpillPickler(pickle.Pickler):
    """Pickles a cache entry, diverting large :class:`ProfileColumns`.

    Every ``ProfileColumns`` holding at least ``spill_points`` LOIs is
    replaced by a persistent id and collected on :attr:`spilled`; the caller
    writes those columns' arrays to the sidecar ``.npz``.  Shared column
    objects (one profile referenced from several places) spill once.
    """

    def __init__(self, handle, spill_points: int) -> None:
        super().__init__(handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._spill_points = spill_points
        self._indices: dict[int, int] = {}
        self.spilled: list[ProfileColumns] = []

    def persistent_id(self, obj: object) -> tuple[str, int] | None:
        if not isinstance(obj, ProfileColumns) or len(obj) < self._spill_points:
            return None
        index = self._indices.get(id(obj))  # statics: allow[identity-hash] -- in-process dedup only; what persists is the first-encounter spill index
        if index is None:
            index = len(self.spilled)
            self._indices[id(obj)] = index  # statics: allow[identity-hash] -- the pinned reference in self.spilled keeps the id stable for the dump
            self.spilled.append(obj)
        return (_SPILL_TAG, index)


class _ColumnSpillUnpickler(pickle.Unpickler):
    """Loads a cache entry, mapping spilled columns back from the sidecar.

    The sidecar is opened lazily (entries without spilled columns never touch
    it) with ``mmap_mode="r"``, so the replayed profile's arrays are memory
    maps: a cache hit faults in only the pages a consumer actually reads.
    """

    def __init__(self, handle, sidecar: Path) -> None:
        super().__init__(handle)
        self._sidecar = sidecar
        self._payloads: dict[int, dict[str, np.ndarray]] | None = None
        self._loaded: dict[int, ProfileColumns] = {}

    def persistent_load(self, pid: object) -> ProfileColumns:
        if not (isinstance(pid, tuple) and len(pid) == 2 and pid[0] == _SPILL_TAG):
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        index = int(pid[1])
        columns = self._loaded.get(index)
        if columns is None:
            if self._payloads is None:
                members = load_npz_payload(self._sidecar, mmap_mode="r")
                self._payloads = {}
                for name, array in members.items():
                    prefix, _, key = name.partition("/")
                    self._payloads.setdefault(int(prefix), {})[key] = array
            columns = ProfileColumns.from_payload(self._payloads[index])
            self._loaded[index] = columns
        return columns


def _write_entry(result: object, handle, spill_points: int) -> list[ProfileColumns]:
    """Pickle ``result`` into ``handle``; return the columns that spilled."""
    pickler = _ColumnSpillPickler(handle, spill_points)
    pickler.dump(result)
    return pickler.spilled


def _write_sidecar(spilled: Sequence[ProfileColumns], handle) -> None:
    """Write the spilled columns' arrays as ``{index}/{key}`` npz members."""
    members: dict[str, np.ndarray] = {}
    for index, columns in enumerate(spilled):
        for key, array in columns.to_payload().items():
            members[f"{index}/{key}"] = array
    np.savez(handle, **members)


def _execute_job_guarded(
    job: ProfileJob,
    attempt: int = 0,
    in_worker: bool = False,
    plan_payload: object | None = None,
) -> tuple[object, JobFailure | None]:
    """Run one job attempt, trapping its failure instead of poisoning the pool.

    Returns ``(result, None)`` on success and ``(None, failure)`` on failure;
    the :class:`JobFailure` carries the exception type, message, formatted
    traceback and retry classification, so the supervising dispatcher can
    decide whether to retry and the sweep can re-raise with full context.

    Fault injection: the dispatcher ships its resolved
    :mod:`~repro.testing.faults` plan via ``plan_payload``; called directly
    (or by older dispatch paths) the worker honours ``FINGRAV_FAULT_PLAN``
    itself.  Matching is per ``(job id, attempt)``, so a retried attempt is
    past its fault deterministically.
    """
    try:
        if plan_payload is not None:
            plan = faults.FaultPlan.from_payload(plan_payload)
        else:
            plan = faults.active_plan()
        if plan is not None:
            spec = plan.execute_fault(job.job_id, attempt)
            if spec is not None:
                faults.fire(spec, in_worker=in_worker)
        return execute_job(job), None
    except Exception as exc:
        return None, JobFailure.from_exception(exc, attempts=attempt + 1)


class SweepJobError(RuntimeError):
    """One or more sweep jobs failed (the rest completed and were cached).

    ``failures`` maps the failing job ids to :class:`JobFailure` records
    (exception type, message, formatted traceback, retry classification and
    attempt count -- ``str(failure)`` renders the full description);
    ``completed`` holds the results of every job that did finish (cache hits
    included), so callers can salvage partial sweeps.
    """

    def __init__(
        self,
        failures: Mapping[str, "JobFailure | str"],
        completed: Mapping[str, object],
    ) -> None:
        self.failures: dict[str, JobFailure] = {
            job_id: (
                failure
                if isinstance(failure, JobFailure)
                else JobFailure.from_description(failure)
            )
            for job_id, failure in failures.items()
        }
        self.completed = dict(completed)
        #: Experiments :func:`run_sweep` still assembled from the completed
        #: jobs (set by run_sweep before re-raising; empty for runner-level
        #: callers).
        self.assembled: dict[str, object] = {}
        names = ", ".join(sorted(self.failures))
        first = next(iter(self.failures.values())).summary_line
        super().__init__(
            f"{len(self.failures)} sweep job(s) failed ({names}); "
            f"{len(self.completed)} completed and were kept. First failure: {first}"
        )


# --------------------------------------------------------------------------- #
# The run manifest: a machine-checkable record of one sweep.
# --------------------------------------------------------------------------- #
#: Bump when the manifest layout changes.
#: Schema 2: per-job ``collection`` audit (adaptive stopping decision) and
#: the run-wide ``counts.runs_saved`` aggregate.
MANIFEST_SCHEMA = 2


def _collection_audit(outcome: object) -> dict | None:
    """The collection audit a result carries, if any (tolerant extractor).

    Full and slim results both stamp ``metadata["collection"]`` (stop
    reason, runs collected vs planned, final CI); bare profiles from
    interleaved jobs carry none.
    """
    metadata = getattr(outcome, "metadata", None)
    if isinstance(metadata, Mapping):
        collection = metadata.get("collection")
        if isinstance(collection, Mapping):
            return dict(collection)
    return None


@dataclass
class _JobLedger:
    """Per-job bookkeeping accumulated while a sweep runs."""

    key: str
    status: str = "pending"  # pending -> hit | recomputed | failed
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    requeues: int = 0
    quarantined: int = 0
    cache_stored: bool = False
    cache_store_failures: int = 0
    seconds: float = 0.0
    error: str | None = None
    events: list[str] = field(default_factory=list)
    #: The result's collection audit (stop reason, runs collected vs
    #: planned, final CI) -- None for bare-profile jobs and failures.
    collection: dict | None = None

    def to_payload(self) -> dict:
        return {
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "requeues": self.requeues,
            "quarantined": self.quarantined,
            "cache_stored": self.cache_stored,
            "cache_store_failures": self.cache_store_failures,
            "seconds": round(self.seconds, 6),
            "error": self.error,
            "events": list(self.events),
            "collection": self.collection,
        }


class SweepManifest:
    """Builds (and writes) the JSON run manifest of one :meth:`SweepRunner.run`.

    The manifest is the source -> status -> follow-ups refresh log of the
    sweep: per job id it records whether the result was a cache *hit* or was
    *recomputed* (or *failed*), how many attempts/retries/timeouts/worker
    crashes it took, whether its cache entry was quarantined, and how long it
    ran; run-wide it stamps the runner config, the fault plan in force (if
    any) and the engine/provider provenance.  Schema in ``docs/sweep.md``.
    """

    def __init__(
        self,
        path: Path | None,
        workers: int,
        config: SweepConfig,
        fault_plan: "faults.FaultPlan | None" = None,
    ) -> None:
        self.path = path
        self.workers = workers
        self.config = config
        self.fault_plan = fault_plan
        self.jobs: dict[str, _JobLedger] = {}
        self._started = time.perf_counter()

    def entry(self, job: ProfileJob) -> _JobLedger:
        ledger = self.jobs.get(job.job_id)
        if ledger is None:
            ledger = _JobLedger(key=job_key(job))
            self.jobs[job.job_id] = ledger
        return ledger

    def event(self, job_id: str, text: str) -> None:
        self.jobs[job_id].events.append(text)

    # ------------------------------------------------------------------ #
    def to_payload(self, interrupted: bool = False) -> dict:
        ledgers = self.jobs.values()
        counts = {
            "jobs": len(self.jobs),
            "hits": sum(1 for job in ledgers if job.status == "hit"),
            "recomputed": sum(1 for job in ledgers if job.status == "recomputed"),
            "failed": sum(1 for job in ledgers if job.status == "failed"),
            "retried": sum(job.retries for job in ledgers),
            "timed_out": sum(job.timeouts for job in ledgers),
            "worker_crashes": sum(job.worker_crashes for job in ledgers),
            "requeued": sum(job.requeues for job in ledgers),
            "quarantined": sum(job.quarantined for job in ledgers),
            "cache_store_failures": sum(job.cache_store_failures for job in ledgers),
            "runs_saved": sum(
                int(job.collection.get("runs_saved", 0))
                for job in ledgers
                if job.collection is not None
            ),
        }
        return {
            "schema": MANIFEST_SCHEMA,
            "created_unix": time.time(),  # statics: allow[wall-clock] -- manifest provenance stamp; never read back into results
            "interrupted": interrupted,
            "elapsed_s": round(time.perf_counter() - self._started, 6),
            "workers": self.workers,
            "config": {
                "job_timeout_s": self.config.job_timeout_s,
                "max_retries": self.config.max_retries,
                "backoff_base_s": self.config.backoff_base_s,
                "backoff_cap_s": self.config.backoff_cap_s,
                "max_pool_rebuilds": self.config.max_pool_rebuilds,
            },
            "engine": execution_provenance(),
            "fault_plan": self.fault_plan.to_payload() if self.fault_plan else None,
            "counts": counts,
            "jobs": {job_id: ledger.to_payload() for job_id, ledger in self.jobs.items()},
        }

    def finalize(self, interrupted: bool = False) -> dict:
        """Snapshot the manifest and (best-effort) write it to disk.

        Like the cache, the manifest is an observability artifact: a write
        failure (read-only cache dir, ``ENOSPC``) degrades to the in-memory
        snapshot instead of failing the sweep -- which is also why this is
        safe to call from the ``KeyboardInterrupt`` flush path.
        """
        payload = self.to_payload(interrupted=interrupted)
        if self.path is not None:
            staging = self.path.with_name(
                f"{self.path.name}.{os.getpid()}-{next(_STAGING_COUNTER)}.tmp"
            )
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                staging.write_text(json.dumps(payload, indent=2, default=str) + "\n")
                staging.replace(self.path)
            except OSError:
                try:
                    staging.unlink(missing_ok=True)
                except OSError:
                    pass
        return payload


# --------------------------------------------------------------------------- #
# The runner.
# --------------------------------------------------------------------------- #
@dataclass
class _Flight:
    """One dispatched job attempt: what is running, since when, until when."""

    job: ProfileJob
    attempt: int
    started: float
    deadline: float | None


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly stop a pool that may hold hung or dead workers.

    ``shutdown`` alone never returns while a worker is wedged, so the worker
    processes are SIGKILLed first; reaching into ``_processes`` is the only
    way the stdlib executor exposes them, and any failure here degrades to
    leaking a doomed pool rather than hanging the sweep.
    """
    # Snapshot then SIGKILL the workers *before* any shutdown call:
    # ``shutdown()`` drops the ``_processes``/manager-thread references even
    # with ``wait=False``, after which the hung workers can no longer be
    # reached and interpreter exit blocks joining them.
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.kill()
        except Exception:
            continue
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass


class SweepRunner:
    """Executes profile jobs, optionally in parallel and through a disk cache.

    ``workers <= 1`` runs jobs inline (no subprocesses); ``workers > 1`` fans
    pending jobs out over a :class:`ProcessPoolExecutor`.  Because jobs are
    independent and internally seeded, results are identical for any worker
    count; a determinism test pins this.  When ``cache_dir`` is set, finished
    jobs are stored under their content key and replayed on later sweeps:
    each entry is a pickle whose large profile columns (``>= spill_points``
    LOIs) live in a sidecar ``<key>.npz`` and are mapped back lazily with
    ``mmap_mode="r"`` on load.  ``spill_points`` defaults to
    ``FINGRAV_SPILL_POINTS`` or :data:`_SPILL_POINTS_DEFAULT`.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        spill_points: int | None = None,
        config: SweepConfig | None = None,
        manifest_path: str | Path | None = None,
        fault_plan: "faults.FaultPlan | None" = None,
    ) -> None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if spill_points is None:
            try:
                spill_points = int(
                    os.environ.get("FINGRAV_SPILL_POINTS", "") or _SPILL_POINTS_DEFAULT
                )
            except ValueError:
                spill_points = _SPILL_POINTS_DEFAULT
        self.spill_points = max(int(spill_points), 1)
        self.config = config if config is not None else SweepConfig.from_env()
        if manifest_path is not None:
            self.manifest_path: Path | None = Path(manifest_path)
        elif self.cache_dir is not None:
            self.manifest_path = self.cache_dir / "manifest.json"
        else:
            self.manifest_path = None
        #: Explicit fault plan for tests; None defers to FINGRAV_FAULT_PLAN.
        self.fault_plan = fault_plan
        self.cache_hits = 0
        #: Snapshot of the last run's manifest payload (set even when no
        #: manifest file is written because the cache is disabled).
        self.last_manifest: dict | None = None

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[ProfileJob]) -> dict[str, object]:
        """Execute jobs (deduplicated by id) and return {job_id: result}.

        Job failures are collected, not fatal per-job: every pending job
        still runs to a terminal outcome (bounded retries included),
        finished results are cached, and a :class:`SweepJobError` naming the
        failing job id(s) is raised at the end with the completed results
        attached.  The run manifest is flushed on every exit path --
        including ``KeyboardInterrupt`` -- so an aborted sweep still leaves
        an accurate record of what finished.
        """
        unique: dict[str, ProfileJob] = {}
        for job in jobs:
            existing = unique.get(job.job_id)
            if existing is not None:
                if existing != job:
                    raise ValueError(f"conflicting jobs share id {job.job_id!r}")
                continue
            unique[job.job_id] = job

        # Resolve (and validate) the fault plan before any work is dispatched:
        # a malformed plan must abort loudly, not run a silently-clean sweep.
        plan = self.fault_plan if self.fault_plan is not None else faults.active_plan()
        self._sweep_stale_staging()
        manifest = SweepManifest(
            self.manifest_path, workers=self.workers, config=self.config, fault_plan=plan
        )
        results: dict[str, object] = {}
        pending: list[ProfileJob] = []
        for job in unique.values():
            ledger = manifest.entry(job)
            cached = self._cache_load(job, manifest=manifest, plan=plan)
            if cached is not None:
                results[job.job_id] = cached
                self.cache_hits += 1
                ledger.status = "hit"
                ledger.collection = _collection_audit(cached)
            else:
                if self.cache_dir is not None:
                    manifest.event(job.job_id, "cache-miss")
                pending.append(job)

        failures: dict[str, JobFailure] = {}
        try:
            if pending:
                if self.workers == 1:
                    self._run_inline(pending, results, failures, manifest, plan)
                else:
                    self._run_supervised(pending, results, failures, manifest, plan)
        except BaseException:
            # KeyboardInterrupt (and any dispatcher bug) still flushes the
            # manifest so operators can see exactly what completed.
            self.last_manifest = manifest.finalize(interrupted=True)
            raise
        self.last_manifest = manifest.finalize()
        if failures:
            raise SweepJobError(failures, results)
        return results

    # ------------------------------------------------------------------ #
    # Inline execution (workers == 1): retries, no process isolation.
    # ------------------------------------------------------------------ #
    def _run_inline(
        self,
        pending: Sequence[ProfileJob],
        results: dict[str, object],
        failures: dict[str, JobFailure],
        manifest: SweepManifest,
        plan: "faults.FaultPlan | None",
    ) -> None:
        plan_payload = plan.to_payload() if plan is not None else None
        for job in pending:
            ledger = manifest.entry(job)
            attempt = 0
            while True:
                ledger.attempts += 1
                started = time.perf_counter()
                outcome, failure = _execute_job_guarded(
                    job, attempt, in_worker=False, plan_payload=plan_payload
                )
                ledger.seconds += time.perf_counter() - started
                if failure is None:
                    results[job.job_id] = outcome
                    self._cache_store(job, outcome, manifest=manifest)
                    ledger.status = "recomputed"
                    ledger.collection = _collection_audit(outcome)
                    break
                if failure.retryable and attempt < self.config.max_retries:
                    delay = self._backoff(job.job_id, attempt)
                    ledger.retries += 1
                    manifest.event(
                        job.job_id,
                        f"retry {attempt + 1}/{self.config.max_retries} after "
                        f"{failure.summary_line} (backoff {delay:.3f}s)",
                    )
                    time.sleep(delay)
                    attempt += 1
                    continue
                failures[job.job_id] = failure
                ledger.status = "failed"
                ledger.error = failure.summary_line
                break

    # ------------------------------------------------------------------ #
    # Supervised pool execution (workers > 1): submit/wait dispatch with a
    # per-job watchdog, bounded retries and bounded pool rebuilds.
    # ------------------------------------------------------------------ #
    def _run_supervised(
        self,
        pending: Sequence[ProfileJob],
        results: dict[str, object],
        failures: dict[str, JobFailure],
        manifest: SweepManifest,
        plan: "faults.FaultPlan | None",
    ) -> None:
        config = self.config
        plan_payload = plan.to_payload() if plan is not None else None
        size = min(self.workers, len(pending))
        ready: deque[tuple[ProfileJob, int]] = deque((job, 0) for job in pending)
        delayed: list[tuple[float, int, ProfileJob, int]] = []  # backoff heap
        tiebreak = itertools.count()
        rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=size)
        in_flight: dict[Future, _Flight] = {}

        def settle_failure(job: ProfileJob, attempt: int, failure: JobFailure) -> None:
            """Schedule a retry with backoff, or record the terminal failure."""
            ledger = manifest.entry(job)
            if failure.retryable and attempt < config.max_retries:
                delay = self._backoff(job.job_id, attempt)
                ledger.retries += 1
                manifest.event(
                    job.job_id,
                    f"retry {attempt + 1}/{config.max_retries} after "
                    f"{failure.summary_line} (backoff {delay:.3f}s)",
                )
                heapq.heappush(
                    delayed,
                    (time.monotonic() + delay, next(tiebreak), job, attempt + 1),
                )
            else:
                failures[job.job_id] = failure
                ledger.status = "failed"
                ledger.error = failure.summary_line

        def settle_outcome(flight: "_Flight", outcome: object, failure: JobFailure | None) -> None:
            ledger = manifest.entry(flight.job)
            ledger.seconds += time.monotonic() - flight.started
            if failure is None:
                results[flight.job.job_id] = outcome
                self._cache_store(flight.job, outcome, manifest=manifest)
                ledger.status = "recomputed"
                ledger.collection = _collection_audit(outcome)
            else:
                settle_failure(flight.job, flight.attempt, failure)

        def exhaust_rebuild_budget(reason: str) -> None:
            """Terminal backstop: the pool broke more often than allowed."""
            casualties = (
                [(flight.job, flight.attempt) for flight in in_flight.values()]
                + list(ready)
                + [(job, attempt) for _, _, job, attempt in delayed]
            )
            in_flight.clear()
            ready.clear()
            delayed.clear()
            for job, attempt in casualties:
                ledger = manifest.entry(job)
                failure = JobFailure(
                    exc_type="PoolRebuildBudgetExceeded",
                    message=(
                        f"pool rebuild budget exhausted after "
                        f"{config.max_pool_rebuilds} rebuild(s): {reason}"
                    ),
                    retryable=False,
                    attempts=attempt + 1,
                )
                failures[job.job_id] = failure
                ledger.status = "failed"
                ledger.error = failure.summary_line

        try:
            while ready or delayed or in_flight:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, job, attempt = heapq.heappop(delayed)
                    ready.append((job, attempt))

                pool_broken = False
                while ready and len(in_flight) < size:
                    job, attempt = ready.popleft()
                    ledger = manifest.entry(job)
                    started = time.monotonic()
                    deadline = (
                        started + config.job_timeout_s
                        if config.job_timeout_s is not None
                        else None
                    )
                    try:
                        future = pool.submit(
                            _execute_job_guarded, job, attempt, True, plan_payload
                        )
                    except BrokenExecutor:
                        # The pool died between completions; put the job back
                        # (it never ran -- no attempt charged) and rebuild.
                        ready.appendleft((job, attempt))
                        pool_broken = True
                        break
                    ledger.attempts += 1
                    in_flight[future] = _Flight(job, attempt, started, deadline)

                if not pool_broken and not in_flight:
                    # Only backoff-delayed work remains: sleep until due.
                    if delayed:
                        time.sleep(max(delayed[0][0] - time.monotonic(), 0.0))
                    continue

                if not pool_broken:
                    deadlines = [
                        flight.deadline
                        for flight in in_flight.values()
                        if flight.deadline is not None
                    ]
                    if delayed:
                        deadlines.append(delayed[0][0])
                    timeout = (
                        max(min(deadlines) - time.monotonic(), 0.0)
                        if deadlines
                        else None
                    )
                    done, _ = wait(
                        list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        flight = in_flight.pop(future)
                        ledger = manifest.entry(flight.job)
                        try:
                            outcome, failure = future.result()
                        except BrokenExecutor as exc:
                            # The worker under this job (or a sibling) died;
                            # every in-flight future fails the same way.  We
                            # cannot tell the crasher from the bystanders, so
                            # each affected job is charged one retryable
                            # attempt -- one crashed worker costs one retry.
                            ledger.worker_crashes += 1
                            ledger.seconds += time.monotonic() - flight.started
                            manifest.event(
                                flight.job.job_id,
                                f"worker-crash on attempt {flight.attempt + 1} "
                                f"({type(exc).__name__})",
                            )
                            settle_failure(
                                flight.job,
                                flight.attempt,
                                JobFailure.from_exception(exc, flight.attempt + 1),
                            )
                            pool_broken = True
                            continue
                        except Exception as exc:  # CancelledError and friends
                            ledger.seconds += time.monotonic() - flight.started
                            settle_failure(
                                flight.job,
                                flight.attempt,
                                JobFailure.from_exception(exc, flight.attempt + 1),
                            )
                            continue
                        settle_outcome(flight, outcome, failure)

                if pool_broken:
                    rebuilds += 1
                    # Salvage any future that finished cleanly before the
                    # collapse; everything else is lost with the pool.
                    for future, flight in list(in_flight.items()):
                        if future.done():
                            try:
                                outcome, failure = future.result()
                            except Exception:
                                pass
                            else:
                                settle_outcome(flight, outcome, failure)
                                continue
                        ledger = manifest.entry(flight.job)
                        ledger.worker_crashes += 1
                        ledger.seconds += time.monotonic() - flight.started
                        manifest.event(
                            flight.job.job_id,
                            f"worker-crash on attempt {flight.attempt + 1} "
                            f"(pool collapsed)",
                        )
                        settle_failure(
                            flight.job,
                            flight.attempt,
                            JobFailure(
                                exc_type="BrokenProcessPool",
                                message="worker pool collapsed under this job",
                                retryable=True,
                                attempts=flight.attempt + 1,
                            ),
                        )
                    in_flight.clear()
                    _kill_pool(pool)
                    if rebuilds > config.max_pool_rebuilds:
                        exhaust_rebuild_budget("worker crash")
                        return
                    pool = ProcessPoolExecutor(max_workers=size)
                    continue

                # Watchdog: time out any in-flight job past its deadline.
                now = time.monotonic()
                hung = [
                    future
                    for future, flight in in_flight.items()
                    if flight.deadline is not None and flight.deadline <= now
                ]
                if hung:
                    rebuilds += 1
                    # A hung worker cannot be cancelled through the executor
                    # API; kill the pool and rebuild it.  The hung job is
                    # charged a (retryable) timeout; innocent in-flight jobs
                    # are requeued at the same attempt -- interruption is not
                    # their failure -- bounded by the rebuild budget.
                    _kill_pool(pool)
                    for future, flight in list(in_flight.items()):
                        ledger = manifest.entry(flight.job)
                        ledger.seconds += time.monotonic() - flight.started
                        if future in hung:
                            ledger.timeouts += 1
                            manifest.event(
                                flight.job.job_id,
                                f"timed-out after {config.job_timeout_s}s on "
                                f"attempt {flight.attempt + 1}",
                            )
                            settle_failure(
                                flight.job,
                                flight.attempt,
                                JobFailure(
                                    exc_type="JobTimeout",
                                    message=(
                                        f"job exceeded job_timeout_s="
                                        f"{config.job_timeout_s}s"
                                    ),
                                    retryable=True,
                                    attempts=flight.attempt + 1,
                                ),
                            )
                        else:
                            ledger.requeues += 1
                            manifest.event(
                                flight.job.job_id,
                                f"requeued (pool rebuilt around a hung sibling, "
                                f"attempt {flight.attempt + 1} uncharged)",
                            )
                            ready.append((flight.job, flight.attempt))
                    in_flight.clear()
                    if rebuilds > config.max_pool_rebuilds:
                        exhaust_rebuild_budget("hung job")
                        return
                    pool = ProcessPoolExecutor(max_workers=size)
        finally:
            _kill_pool(pool)

    # ------------------------------------------------------------------ #
    def _backoff(self, job_id: str, attempt: int) -> float:
        return backoff_delay(
            job_id, attempt, self.config.backoff_base_s, self.config.backoff_cap_s
        )

    # ------------------------------------------------------------------ #
    def _cache_path(self, job: ProfileJob) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{job_key(job)}.pkl"

    def _cache_load(
        self,
        job: ProfileJob,
        manifest: SweepManifest | None = None,
        plan: "faults.FaultPlan | None" = None,
    ) -> object | None:
        path = self._cache_path(job)
        if path is None:
            return None
        if plan is not None and path.exists():
            spec = plan.cache_fault(job.job_id)
            if spec is not None and faults.corrupt_entry(path):
                if manifest is not None:
                    manifest.event(job.job_id, "fault-injected: cache_corrupt")
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return _ColumnSpillUnpickler(handle, path.with_suffix(".npz")).load()
        except Exception as exc:
            # Truncated/corrupt pickle or sidecar: quarantine the entry so
            # later sweeps see a clean miss instead of re-parsing garbage,
            # and degrade to a recompute -- never an abort.
            self._quarantine(job, path, exc, manifest)
            return None

    def _quarantine(
        self,
        job: ProfileJob,
        path: Path,
        exc: Exception,
        manifest: SweepManifest | None,
    ) -> None:
        quarantined: list[str] = []
        for victim in (path, path.with_suffix(".npz")):
            try:
                if victim.exists():
                    victim.replace(victim.with_name(victim.name + ".corrupt"))
                    quarantined.append(victim.name)
            except OSError:
                # Even the rename can fail (read-only dir, races); removal is
                # the next-best way to stop replaying the corruption.
                try:
                    victim.unlink(missing_ok=True)
                except OSError:
                    continue
        if manifest is not None:
            ledger = manifest.entry(job)
            ledger.quarantined += 1
            manifest.event(
                job.job_id,
                f"cache-quarantined {quarantined or [path.name]} "
                f"({type(exc).__name__}: {str(exc).splitlines()[0] if str(exc) else ''})",
            )

    def _cache_store(
        self, job: ProfileJob, result: object, manifest: SweepManifest | None = None
    ) -> None:
        path = self._cache_path(job)
        if path is None:
            return
        # The staging names are unique per writer (pid + in-process counter):
        # two sweeps sharing FINGRAV_PROFILE_CACHE previously staged to the
        # same `<key>.tmp` and could interleave writes, atomically renaming a
        # corrupt mix of both into place.  The sidecar shares the suffix and
        # is renamed into place *before* the pickle, so a reader that sees
        # the new pickle always finds a sidecar at least as new.
        sidecar = path.with_suffix(".npz")
        suffix = f".{os.getpid()}-{next(_STAGING_COUNTER)}.tmp"
        staging = path.with_name(path.name + suffix)
        sidecar_staging = sidecar.with_name(sidecar.name + suffix)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with staging.open("wb") as handle:
                spilled = _write_entry(result, handle, self.spill_points)
            if spilled:
                with sidecar_staging.open("wb") as handle:
                    _write_sidecar(spilled, handle)
                sidecar_staging.replace(sidecar)
            staging.replace(path)
            if manifest is not None:
                manifest.entry(job).cache_stored = True
        except Exception as exc:
            # The cache is an optimisation; a failed store (ENOSPC, lock
            # trouble, permissions) never fails a sweep -- but it is recorded
            # so the manifest shows why the entry will recompute next time.
            if manifest is not None:
                ledger = manifest.entry(job)
                ledger.cache_store_failures += 1
                manifest.event(
                    job.job_id, f"cache-store-failed ({type(exc).__name__}: {exc})"
                )
        finally:
            # A failed write (or a replace that raced a directory removal)
            # must not leave its staging files behind.
            for stray in (staging, sidecar_staging):
                try:
                    stray.unlink(missing_ok=True)
                except OSError:
                    pass

    def _sweep_stale_staging(self) -> None:
        """Remove staging strays orphaned by crashed/killed writers.

        Only files matching the staging pattern *and* untouched for
        :data:`_STALE_STAGING_S` are removed, so concurrent sweeps' live
        staging files are never disturbed.
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        cutoff = time.time() - _STALE_STAGING_S  # statics: allow[wall-clock] -- GC cutoff compared against file mtimes, which are wall-clock too
        for pattern in ("*.pkl.*.tmp", "*.npz.*.tmp", "*.json.*.tmp"):
            for stray in self.cache_dir.glob(pattern):
                try:
                    if stray.stat().st_mtime < cutoff:
                        stray.unlink(missing_ok=True)
                except OSError:
                    continue


def _parse_workers(value: object, source: str) -> int:
    """Validate a worker count, naming its source in the error."""
    try:
        workers = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{source} must be an integer >= 1, got {value!r}") from exc
    if workers < 1:
        raise ValueError(f"{source} must be >= 1, got {workers}")
    return workers


def default_runner() -> SweepRunner:
    """Runner configured from FINGRAV_WORKERS / FINGRAV_PROFILE_CACHE (plus
    the fault-model knobs read by :meth:`SweepConfig.from_env`)."""
    workers = _parse_workers(os.environ.get("FINGRAV_WORKERS", "1") or 1, "FINGRAV_WORKERS")
    cache = os.environ.get("FINGRAV_PROFILE_CACHE") or None
    return SweepRunner(workers=workers, cache_dir=cache)


def run_jobs(
    jobs: Sequence[ProfileJob], runner: SweepRunner | None = None
) -> dict[str, object]:
    """Execute jobs with the given runner (or a fresh default one)."""
    return (runner or default_runner()).run(jobs)


# --------------------------------------------------------------------------- #
# The full-suite sweep (python -m repro.experiments.sweep).
# --------------------------------------------------------------------------- #
EXPERIMENT_NAMES: tuple[str, ...] = (
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "table1", "table2", "ablations",
)


def run_sweep(
    experiments: Sequence[str],
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> dict[str, object]:
    """Run the requested experiment drivers through one shared job pool.

    All drivers' jobs are collected first and executed in a single
    :meth:`SweepRunner.run` call, so the pool is saturated across experiment
    boundaries; each driver then assembles its result object from the shared
    result dictionary.  Returns {experiment name: result object}.

    A failing job does not discard the rest of the sweep: every experiment
    whose jobs all completed is still assembled, and the
    :class:`SweepJobError` re-raised at the end carries those assembled
    results on ``.assembled`` (plus the raw completed job results on
    ``.completed``), so callers -- including the CLI -- can salvage the
    finished work even with the on-disk cache disabled.
    """
    from . import ablations, fig5, fig6, fig7, fig8, fig9, fig10, table1, table2

    scale = scale or default_scale()
    runner = runner or default_runner()
    requested = list(dict.fromkeys(experiments))
    unknown = [name for name in requested if name not in EXPERIMENT_NAMES]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}; pick from {EXPERIMENT_NAMES}")

    needs = set(requested)
    if "table2" in needs:
        # Table II composes Figure 7 and Figure 9; make sure their jobs ride
        # along so the assembly below can reuse them.
        needs.update(("fig7", "fig9"))

    jobs: list[ProfileJob] = []
    if "fig5" in needs:
        jobs += fig5.fig5_jobs(scale=scale)
    if "fig6" in needs:
        jobs += fig6.fig6_jobs(scale=scale)
    if "fig7" in needs:
        jobs += fig7.fig7_jobs(scale=scale)
    if "fig8" in needs:
        jobs += fig8.fig8_jobs(scale=scale)
    if "fig9" in needs:
        jobs += fig9.fig9_jobs(scale=scale)
    if "fig10" in needs:
        jobs += fig10.fig10_jobs(scale=scale)
    if "table1" in needs:
        jobs += table1.table1_jobs(scale=scale)
    if "ablations" in needs:
        jobs += ablations.sampler_ablation_jobs(scale=scale)
        jobs += ablations.binning_margin_jobs(scale=scale)

    job_error: SweepJobError | None = None
    try:
        results = runner.run(jobs)
    except SweepJobError as error:
        results = error.completed
        job_error = error

    def assemble(name: str, build) -> object | None:
        # With a partial job pool an experiment whose job is missing raises
        # KeyError during assembly; skip it (its failure is already recorded
        # on the SweepJobError being re-raised below).
        if job_error is None:
            return build()
        try:
            return build()
        except KeyError:
            return None

    assembled: dict[str, object] = {}
    if "fig5" in needs:
        assembled["fig5"] = assemble("fig5", lambda: fig5.fig5_from_results(results, scale=scale))
    if "fig6" in needs:
        assembled["fig6"] = assemble("fig6", lambda: fig6.fig6_from_results(results, scale=scale))
    if "fig7" in needs:
        assembled["fig7"] = assemble("fig7", lambda: fig7.fig7_from_results(results, scale=scale))
    if "fig8" in needs:
        assembled["fig8"] = assemble("fig8", lambda: fig8.fig8_from_results(results, scale=scale))
    if "fig9" in needs:
        assembled["fig9"] = assemble("fig9", lambda: fig9.fig9_from_results(results, scale=scale))
    if "fig10" in needs:
        assembled["fig10"] = assemble("fig10", lambda: fig10.fig10_from_results(results, scale=scale))
    if "table1" in needs:
        assembled["table1"] = assemble("table1", lambda: table1.table1_from_results(results, scale=scale))
    if "table2" in requested:
        if assembled.get("fig7") is not None and assembled.get("fig9") is not None:
            assembled["table2"] = assemble("table2", lambda: table2.run_table2(
                scale=scale, fig7=assembled["fig7"], fig9=assembled["fig9"]
            ))
        else:
            assembled["table2"] = None
    if "ablations" in needs:
        sampler = assemble(
            "ablations", lambda: ablations.sampler_ablation_from_results(results, scale=scale)
        )
        margins = assemble(
            "ablations", lambda: ablations.binning_margin_from_results(results, scale=scale)
        )
        if sampler is None or margins is None:
            assembled["ablations"] = None
        else:
            assembled["ablations"] = {
                "sampler": sampler,
                "margins": margins,
                # Coverage and drift are raw-record studies (backend.run
                # loops, no FinGraV profile), so they run inline at their
                # fixed small budgets instead of through the profile-job pool.
                "coarse_coverage": ablations.run_coarse_coverage(scale=scale),
                "drift": ablations.run_drift_sensitivity(scale=scale),
            }
    final = {
        name: assembled[name]
        for name in requested
        if assembled.get(name) is not None
    }
    if job_error is not None:
        job_error.assembled = final
        raise job_error
    return final


def _summarize(name: str, result: object) -> object:
    """JSON-friendly summary of one experiment's result object."""
    if name == "ablations":
        sampler = result["sampler"]
        return {
            "sampler": sampler.to_row(),
            "margins": result["margins"].rows(),
            "coarse_coverage": result["coarse_coverage"].to_row(),
            "drift": result["drift"].rows(),
        }
    if hasattr(result, "summary"):
        return result.summary()
    if hasattr(result, "rows"):
        return result.rows()
    return repr(result)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep",
        description="Run the paper's experiment suite through the parallel sweep engine.",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment driver")
    parser.add_argument(
        "--experiments", nargs="+", default=(), metavar="NAME",
        help=f"drivers to run (any of: {', '.join(EXPERIMENT_NAMES)})",
    )
    parser.add_argument(
        "--scale", default=None,
        help="run budgets: tiny, fast or paper (default: FINGRAV_SCALE or fast)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: FINGRAV_WORKERS or 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="content-keyed on-disk profile cache (default: FINGRAV_PROFILE_CACHE)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job watchdog timeout, workers > 1 only "
             "(default: FINGRAV_JOB_TIMEOUT or disabled; 0 disables)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max retries per transiently-failing job (default: FINGRAV_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="run-manifest location (default: <cache>/manifest.json when caching)",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write summaries to a JSON file")
    parser.add_argument("--list", action="store_true", help="list experiment names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENT_NAMES:
            print(name)
        return 0
    requested = list(EXPERIMENT_NAMES) if args.all else list(args.experiments)
    if not requested:
        parser.error("nothing to run: pass --all or --experiments")

    scale = scale_by_name(args.scale) if args.scale else default_scale()
    try:
        if args.workers is not None:
            workers = _parse_workers(args.workers, "--workers")
        else:
            workers = _parse_workers(
                os.environ.get("FINGRAV_WORKERS", "1") or 1, "FINGRAV_WORKERS"
            )
        config = SweepConfig.from_env()
        if args.job_timeout is not None:
            config = replace(
                config, job_timeout_s=args.job_timeout if args.job_timeout > 0 else None
            )
        if args.retries is not None:
            config = replace(config, max_retries=args.retries)
    except ValueError as error:
        parser.error(str(error))
    cache = args.cache if args.cache is not None else (
        os.environ.get("FINGRAV_PROFILE_CACHE") or None
    )
    try:
        runner = SweepRunner(
            workers=workers, cache_dir=cache, config=config, manifest_path=args.manifest
        )
    except ValueError as error:
        parser.error(str(error))

    print(f"[sweep] scale={scale.name} workers={runner.workers} "
          f"cache={runner.cache_dir or 'off'} "
          f"timeout={config.job_timeout_s or 'off'} retries={config.max_retries} "
          f"experiments={' '.join(requested)}")
    begin = time.perf_counter()
    job_error: SweepJobError | None = None
    try:
        results = run_sweep(requested, scale=scale, runner=runner)
    except faults.FaultPlanError as error:
        print(f"[sweep] ABORT: {error}")
        return 2
    except KeyboardInterrupt:
        # The runner already cancelled/killed its pool and flushed the
        # manifest before re-raising; exit with the conventional SIGINT code.
        print("\n[sweep] interrupted: pending jobs cancelled", flush=True)
        if runner.manifest_path is not None:
            print(f"[sweep] partial manifest flushed to {runner.manifest_path}")
        return 130
    except SweepJobError as error:
        # Salvage: report every experiment that still assembled, then exit
        # nonzero naming the failing job(s).
        results = error.assembled
        job_error = error
    elapsed = time.perf_counter() - begin

    summaries = {}
    for name, result in results.items():
        summary = _summarize(name, result)
        summaries[name] = summary
        print(f"\n=== {name} ===")
        print(json.dumps(summary, indent=2, default=str))
    manifest = runner.last_manifest or {}
    counts = manifest.get("counts", {})
    print(f"\n[sweep] done in {elapsed:.1f}s "
          f"({runner.cache_hits} cache hits, {runner.workers} workers, "
          f"{counts.get('retried', 0)} retries, {counts.get('timed_out', 0)} timeouts, "
          f"{counts.get('quarantined', 0)} quarantined)")
    if runner.manifest_path is not None:
        print(f"[sweep] manifest written to {runner.manifest_path}")
    if job_error is not None:
        print(f"\n[sweep] PARTIAL: {job_error}")
        for job_id, failure in sorted(job_error.failures.items()):
            print(f"[sweep]   {job_id}: {failure.summary_line}")

    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {
                "scale": scale.name,
                "workers": runner.workers,
                "seconds": elapsed,
                "cache_hits": runner.cache_hits,
                "manifest_counts": counts,
                "summaries": summaries,
                "failures": (
                    {job_id: str(failure) for job_id, failure in job_error.failures.items()}
                    if job_error else {}
                ),
            },
            indent=2,
            default=str,
        ) + "\n")
        print(f"[sweep] summaries written to {path}")
    return 0 if job_error is None else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    # Delegate to the canonical module instance so worker processes always
    # unpickle against repro.experiments.sweep, not a __main__ copy.
    from repro.experiments.sweep import main as _canonical_main

    raise SystemExit(_canonical_main())


__all__ = [
    "KernelSpec",
    "kernel_spec",
    "ProfileJob",
    "configured_result_mode",
    "configured_adaptive",
    "execute_job",
    "job_key",
    "SweepConfig",
    "classify_retryable",
    "JobFailure",
    "backoff_delay",
    "SweepJobError",
    "SweepManifest",
    "MANIFEST_SCHEMA",
    "SweepRunner",
    "default_runner",
    "run_jobs",
    "run_sweep",
    "EXPERIMENT_NAMES",
    "main",
]
