"""Table II: takeaways, measurement guidance and recommendations.

Composes the Figure-7 component comparison, the SSE-vs-SSP error summary, the
proportionality assessment and the Figure-9 interleaving measurements into the
five Table II takeaways, each evaluated against the reproduced data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.insights import Takeaway, derive_takeaways
from .common import ExperimentScale, default_scale
from .fig7 import Fig7Result, run_fig7
from .fig9 import Fig9Result, run_fig9
from .sweep import SweepRunner


@dataclass(frozen=True)
class Table2Result:
    """The re-derived Table II."""

    takeaways: tuple[Takeaway, ...]
    fig7: Fig7Result
    fig9: Fig9Result

    def rows(self) -> list[dict[str, object]]:
        return [takeaway.to_row() for takeaway in self.takeaways]

    def takeaway(self, number: int) -> Takeaway:
        for takeaway in self.takeaways:
            if takeaway.number == number:
                return takeaway
        raise KeyError(f"no takeaway #{number}")

    def all_hold(self) -> bool:
        return all(takeaway.holds for takeaway in self.takeaways)

    def summary(self) -> dict[str, object]:
        return {
            "takeaways": len(self.takeaways),
            "holding": sum(1 for t in self.takeaways if t.holds),
            "all_hold": self.all_hold(),
        }


def run_table2(
    scale: ExperimentScale | None = None,
    seed: int = 2,
    fig7: Fig7Result | None = None,
    fig9: Fig9Result | None = None,
    runner: SweepRunner | None = None,
) -> Table2Result:
    """Re-derive Table II.

    ``fig7`` / ``fig9`` results can be passed in to avoid re-running those
    experiments when they have already been produced in the same session
    (``repro.experiments.sweep --all`` does exactly that).
    """
    scale = scale or default_scale()
    fig7 = fig7 or run_fig7(scale=scale, seed=seed + 70, runner=runner)
    fig9 = fig9 or run_fig9(scale=scale, seed=seed + 90, runner=runner)
    takeaways = derive_takeaways(
        comparison=fig7.comparison,
        errors=fig7.errors,
        proportionality=fig7.proportionality,
        interleaving=fig9.measurements,
        cb_names=fig7.cb_names,
        mb_names=fig7.mb_names,
        light_kernel="CB-2K-GEMM",
        heavy_kernel="CB-8K-GEMM",
        unaffected_kernel="CB-8K-GEMM",
    )
    return Table2Result(takeaways=tuple(takeaways), fig7=fig7, fig9=fig9)


__all__ = ["Table2Result", "run_table2"]
