"""Figure 10: component-level comparison of communication kernels vs CB-8K-GEMM.

The paper profiles eight collectives -- all-gather and all-reduce at 64 KB,
128 KB (latency-bound) and 512 MB, 1 GB (bandwidth-bound) -- and plots their
total / XCD / IOD / HBM power next to CB-8K-GEMM.  Expected relationships:

* CB-8K-GEMM has much higher XCD power than any communication kernel;
* bandwidth-bound collectives sit between latency-bound collectives and the
  GEMM in total power;
* bandwidth-bound collectives incur considerably higher IOD and HBM power than
  latency-bound ones (and higher IOD than the GEMM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..analysis.comparative import ComponentComparison, comparison_from_results
from ..core.profiler import FinGraVResult
from ..kernels.collectives import TransferRegime
from ..kernels.workloads import cb_gemm, collective_suite
from .common import ExperimentScale, default_scale
from .sweep import ProfileJob, SweepRunner, configured_adaptive, configured_result_mode, kernel_spec, run_jobs


@dataclass(frozen=True)
class Fig10Result:
    """Everything the Figure-10 reproduction reports."""

    comparison: ComponentComparison
    results: tuple[FinGraVResult, ...]
    latency_bound_names: tuple[str, ...]
    bandwidth_bound_names: tuple[str, ...]
    gemm_name: str

    # ------------------------------------------------------------------ #
    def _mean(self, names: tuple[str, ...], component: str) -> float:
        values = [self.comparison.summary_for(n).component(component) for n in names]
        return sum(values) / len(values)

    def gemm_has_highest_xcd(self) -> bool:
        gemm_xcd = self.comparison.summary_for(self.gemm_name).component("xcd")
        comm_xcd = [
            self.comparison.summary_for(n).component("xcd")
            for n in (*self.latency_bound_names, *self.bandwidth_bound_names)
        ]
        return gemm_xcd > max(comm_xcd) * 1.5

    def bb_total_between_lb_and_gemm(self) -> bool:
        lb_total = self._mean(self.latency_bound_names, "total")
        bb_total = self._mean(self.bandwidth_bound_names, "total")
        gemm_total = self.comparison.summary_for(self.gemm_name).component("total")
        return lb_total < bb_total < gemm_total

    def bb_has_higher_iod_and_hbm(self) -> bool:
        lb_iod = self._mean(self.latency_bound_names, "iod")
        bb_iod = self._mean(self.bandwidth_bound_names, "iod")
        lb_hbm = self._mean(self.latency_bound_names, "hbm")
        bb_hbm = self._mean(self.bandwidth_bound_names, "hbm")
        return bb_iod > lb_iod * 1.5 and bb_hbm > lb_hbm

    def bb_iod_exceeds_gemm_iod(self) -> bool:
        bb_iod = self._mean(self.bandwidth_bound_names, "iod")
        gemm_iod = self.comparison.summary_for(self.gemm_name).component("iod")
        return bb_iod > gemm_iod

    def all_claims(self) -> dict[str, bool]:
        return {
            "gemm_has_highest_xcd": self.gemm_has_highest_xcd(),
            "bb_total_between_lb_and_gemm": self.bb_total_between_lb_and_gemm(),
            "bb_has_higher_iod_and_hbm": self.bb_has_higher_iod_and_hbm(),
            "bb_iod_exceeds_gemm_iod": self.bb_iod_exceeds_gemm_iod(),
        }

    def rows(self) -> list[dict[str, object]]:
        return self.comparison.to_rows()

    def summary(self) -> dict[str, object]:
        summary: dict[str, object] = {
            "latency_bound": list(self.latency_bound_names),
            "bandwidth_bound": list(self.bandwidth_bound_names),
        }
        summary.update(self.all_claims())
        return summary


def fig10_jobs(
    scale: ExperimentScale | None = None,
    seed: int = 10,
    collective_runs: int | None = None,
    gemm_runs: int | None = None,
) -> list[ProfileJob]:
    """Per-kernel profile jobs for Figure 10 (8 collectives + CB-8K-GEMM)."""
    scale = scale or default_scale()
    collective_runs = collective_runs or scale.collective_runs
    gemm_runs = gemm_runs or scale.gemm_runs
    jobs: list[ProfileJob] = []
    # Assembly reads the SSP component summaries (the SSE-vs-SSP error comes
    # from the summary snapshot), never the raw runs or the other profiles:
    # ship slim, SSP-only.
    result_mode = configured_result_mode()
    for offset, kernel in enumerate(collective_suite()):
        jobs.append(
            ProfileJob(
                job_id=f"fig10/{kernel.name}",
                kernel=kernel_spec("collective", kernel.name),
                runs=collective_runs,
                backend_seed=seed + offset,
                profiler_seed=seed + 100 + offset,
                result_mode=result_mode,
                profile_sections=("ssp",),
                adaptive=configured_adaptive(),
            )
        )
    gemm = cb_gemm(8192)
    jobs.append(
        ProfileJob(
            job_id=f"fig10/{gemm.name}",
            kernel=kernel_spec("cb_gemm", 8192),
            runs=gemm_runs,
            backend_seed=seed + len(jobs),
            profiler_seed=seed + 100 + len(jobs),
            result_mode=result_mode,
            profile_sections=("ssp",),
            adaptive=configured_adaptive(),
        )
    )
    return jobs


def fig10_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 10,
) -> Fig10Result:
    """Assemble the Figure-10 result from executed sweep jobs."""
    del scale, seed
    collectives = collective_suite()
    gemm = cb_gemm(8192)
    ordered: tuple[FinGraVResult, ...] = tuple(
        results[f"fig10/{kernel.name}"] for kernel in (*collectives, gemm)
    )
    latency_bound = tuple(
        kernel.name for kernel in collectives
        if kernel.regime() is TransferRegime.LATENCY_BOUND
    )
    bandwidth_bound = tuple(
        kernel.name for kernel in collectives
        if kernel.regime() is TransferRegime.BANDWIDTH_BOUND
    )
    return Fig10Result(
        comparison=comparison_from_results(ordered),
        results=ordered,
        latency_bound_names=latency_bound,
        bandwidth_bound_names=bandwidth_bound,
        gemm_name=gemm.name,
    )


def run_fig10(
    scale: ExperimentScale | None = None,
    seed: int = 10,
    collective_runs: int | None = None,
    gemm_runs: int | None = None,
    runner: SweepRunner | None = None,
) -> Fig10Result:
    """Reproduce Figure 10 (collectives vs CB-8K-GEMM component comparison)."""
    jobs = fig10_jobs(
        scale=scale, seed=seed, collective_runs=collective_runs, gemm_runs=gemm_runs
    )
    return fig10_from_results(run_jobs(jobs, runner), scale=scale, seed=seed)


__all__ = ["Fig10Result", "fig10_jobs", "fig10_from_results", "run_fig10"]
