"""Unit tests for SSE/SSP differentiation, profiles and stitching."""

import math

import numpy as np
import pytest

from repro.core.differentiation import (
    analyze_warmups,
    build_plan,
    detect_throttling,
    ssp_execution_count,
)
from repro.core.profile import (
    FineGrainProfile,
    ProfileKind,
    ProfilePoint,
    measurement_error,
    profile_from_lois,
)
from repro.core.records import LogOfInterest, PowerReading
from repro.core.stitching import ProfileStitcher
from repro.kernels.workloads import cb_gemm, mb_gemv


class TestWarmupAnalysis:
    def test_three_warmups_detected(self):
        durations = [130e-6, 128e-6, 126e-6, 100e-6, 100.5e-6, 99.8e-6, 100.2e-6, 100.1e-6]
        analysis = analyze_warmups(durations, tolerance=0.05)
        assert analysis.warmup_executions == 3
        assert analysis.sse_index == 3
        assert analysis.sse_executions == 4

    def test_no_warmups_when_stable(self):
        durations = [100e-6] * 6
        assert analyze_warmups(durations).warmup_executions == 0

    def test_robust_to_timing_jitter(self):
        rng = np.random.default_rng(0)
        steady = 20e-6
        durations = [32e-6, 31e-6, 30e-6] + list(steady * rng.normal(1.0, 0.04, size=8))
        assert analyze_warmups(durations, tolerance=0.1).warmup_executions == 3

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            analyze_warmups([])
        with pytest.raises(ValueError):
            analyze_warmups([1.0, -1.0])


class TestSSPExecutionCount:
    def test_paper_formula(self):
        # max(ceil(window / exec), SSE executions)
        assert ssp_execution_count(1e-3, 30e-6, 4) == 34
        assert ssp_execution_count(1e-3, 1.2e-3, 4) == 4
        assert ssp_execution_count(1e-3, 200e-6, 4) == 5

    def test_zero_window_gives_sse(self):
        assert ssp_execution_count(0.0, 30e-6, 4) == 4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ssp_execution_count(1e-3, 0.0, 4)
        with pytest.raises(ValueError):
            ssp_execution_count(1e-3, 1e-6, 0)


class TestThrottlingDetection:
    def test_detected_for_power_limited_kernel(self, backend):
        record = backend.run(cb_gemm(8192), executions=6, pre_delay_s=0.0)
        assert detect_throttling(record)

    def test_not_detected_for_light_kernel(self, backend):
        record = backend.run(cb_gemm(2048), executions=30, pre_delay_s=0.0)
        assert not detect_throttling(record)

    def test_not_detected_for_memory_bound_kernel(self, backend):
        record = backend.run(mb_gemv(8192), executions=40, pre_delay_s=0.0)
        assert not detect_throttling(record)


class TestBuildPlan:
    def test_plan_for_short_kernel(self, backend):
        kernel = cb_gemm(2048)
        execution_time = float(np.median(backend.time_kernel(kernel, 5)[2:]))
        plan = build_plan(backend, kernel, execution_time, refine_with_power_search=False)
        assert plan.warmup_executions == 3
        assert plan.sse_executions == 4
        assert plan.ssp_executions >= 25
        assert not plan.throttling_detected

    def test_plan_for_throttled_kernel(self, backend):
        kernel = cb_gemm(8192)
        execution_time = float(np.median(backend.time_kernel(kernel, 5)[2:]))
        plan = build_plan(backend, kernel, execution_time)
        assert plan.throttling_detected
        assert plan.ssp_executions > plan.sse_executions


def make_profile(times, powers, kind=ProfileKind.SSP, execution_time=100e-6):
    points = tuple(
        ProfilePoint(time_s=t, powers_w={"total": p, "xcd": p * 0.7}, run_index=i)
        for i, (t, p) in enumerate(zip(times, powers))
    )
    return FineGrainProfile(
        kernel_name="k", kind=kind, points=points, execution_time_s=execution_time
    )


class TestFineGrainProfile:
    def test_points_sorted_by_time(self):
        profile = make_profile([3e-6, 1e-6, 2e-6], [10, 20, 30])
        assert list(profile.times()) == pytest.approx([1e-6, 2e-6, 3e-6])

    def test_statistics(self):
        profile = make_profile([1e-6, 2e-6, 3e-6, 4e-6], [100, 200, 300, 400])
        assert profile.mean_power_w() == pytest.approx(250.0)
        assert profile.median_power_w() == pytest.approx(250.0)
        assert profile.max_power_w() == pytest.approx(400.0)
        assert profile.min_power_w() == pytest.approx(100.0)
        assert profile.power_std_w() > 0

    def test_energy_is_power_times_time(self):
        profile = make_profile([1e-6, 2e-6], [100, 300], execution_time=2e-3)
        assert profile.energy_j() == pytest.approx(200.0 * 2e-3)

    def test_component_series(self):
        profile = make_profile([1e-6, 2e-6], [100, 200])
        assert list(profile.series("xcd")) == pytest.approx([70.0, 140.0])
        assert "total" in profile.components and "xcd" in profile.components

    def test_empty_profile_stats_are_clean_nan(self):
        import warnings

        profile = FineGrainProfile("k", ProfileKind.SSP, (), 1e-4)
        assert profile.is_empty
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no mean-of-empty-slice warnings
            assert math.isnan(profile.mean_power_w())
            assert math.isnan(profile.median_power_w())
            assert math.isnan(profile.max_power_w())
            assert math.isnan(profile.min_power_w())
            assert math.isnan(profile.energy_j())
            assert profile.power_std_w() == 0.0

    def test_smoothed_fit_reproduces_linear_trend(self):
        times = np.linspace(0, 1e-3, 50)
        powers = 100 + 2e5 * times
        profile = make_profile(times, powers)
        grid, fitted = profile.smoothed(degree=1, num_points=10)
        assert fitted[0] == pytest.approx(100, rel=0.05)
        assert fitted[-1] == pytest.approx(300, rel=0.05)

    def test_smoothed_handles_few_points(self):
        profile = make_profile([1e-6, 2e-6], [100, 200])
        grid, fitted = profile.smoothed(degree=4)
        assert len(grid) == len(fitted) == 100

    def test_binned_mean(self):
        times = np.linspace(0, 1e-3, 100)
        powers = np.where(times < 0.5e-3, 100.0, 300.0)
        profile = make_profile(times, powers)
        centers, means = profile.binned_mean(bins=2)
        assert means[0] == pytest.approx(100.0, rel=0.05)
        assert means[1] == pytest.approx(300.0, rel=0.05)

    def test_restricted_to_runs_and_subsampled(self):
        profile = make_profile([1e-6, 2e-6, 3e-6, 4e-6], [1, 2, 3, 4])
        restricted = profile.restricted_to_runs([0, 2])
        assert len(restricted) == 2
        subsampled = profile.subsampled(2)
        assert len(subsampled) == 2
        assert len(profile.subsampled(100)) == 4

    def test_to_rows(self):
        rows = make_profile([1e-6], [100]).to_rows()
        assert rows[0]["total_w"] == pytest.approx(100)


class TestMeasurementError:
    def test_error_definition(self):
        sse = make_profile([1e-6], [100.0], kind=ProfileKind.SSE)
        ssp = make_profile([1e-6], [500.0], kind=ProfileKind.SSP)
        assert measurement_error(sse, ssp) == pytest.approx(0.8)

    def test_zero_error_when_identical(self):
        profile = make_profile([1e-6, 2e-6], [200.0, 220.0])
        assert measurement_error(profile, profile) == pytest.approx(0.0)


class TestProfileFromLois:
    def test_lois_become_points(self):
        lois = [
            LogOfInterest(
                run_index=r, execution_index=5,
                reading=PowerReading(gpu_timestamp_ticks=r, window_s=1e-3, total_w=100.0 + r,
                                     components={"xcd": 70.0, "iod": 20.0, "hbm": 10.0}),
                window_end_cpu_s=1.0, toi_s=r * 1e-6, toi_fraction=0.1,
            )
            for r in range(5)
        ]
        profile = profile_from_lois("k", ProfileKind.SSP, lois, execution_time_s=50e-6)
        assert len(profile) == 5
        assert profile.kind is ProfileKind.SSP
        assert profile.mean_power_w() == pytest.approx(102.0)


class TestStitcher:
    def test_stitching_backend_runs(self, backend):
        kernel = cb_gemm(4096)
        records = [
            backend.run(kernel, executions=6, pre_delay_s=i * 0.3e-3, run_index=i)
            for i in range(6)
        ]
        stitcher = ProfileStitcher()
        series = stitcher.collect(records)
        ssp = stitcher.ssp_profile(series)
        run_profile = stitcher.run_profile(series)
        assert series.kernel_name == "CB-4K-GEMM"
        assert len(run_profile) > len(ssp)
        assert not run_profile.is_empty
        # Run-profile time axis starts around the first execution.
        assert run_profile.times().min() < 0.5e-3

    def test_golden_run_filter(self, backend):
        kernel = cb_gemm(4096)
        records = [
            backend.run(kernel, executions=5, pre_delay_s=0.2e-3 * i, run_index=i)
            for i in range(4)
        ]
        stitcher = ProfileStitcher()
        series = stitcher.collect(records)
        all_runs = stitcher.run_profile(series)
        only_two = stitcher.run_profile(series, golden_runs=[0, 1])
        assert set(only_two.run_indices()) <= {0, 1}
        assert len(only_two) < len(all_runs)

    def test_collect_requires_runs(self):
        with pytest.raises(ValueError):
            ProfileStitcher().collect([])
