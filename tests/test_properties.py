"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import ExecutionTimeBinner
from repro.core.differentiation import ssp_execution_count
from repro.core.guidance import paper_guidance_table
from repro.core.records import DelayCalibration, TimestampAnchor
from repro.core.timesync import ClockSynchronizer
from repro.gpu.activity import KernelActivityDescriptor
from repro.gpu.clocks import GPUTimestampCounter, SimulationClock
from repro.gpu.power_model import ComponentPower, OperatingPoint, PowerModel
from repro.gpu.spec import ClockSpec, mi300x_spec
from repro.gpu.telemetry import AveragingPowerLogger, _average_power_over
from repro.gpu.device import PowerSegment

SPEC = mi300x_spec()
MODEL = PowerModel(SPEC)

durations = st.lists(
    st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60,
)


class TestBinningProperties:
    @given(values=durations, margin=st.floats(min_value=0.005, max_value=0.2))
    @settings(max_examples=60, deadline=None)
    def test_selection_respects_margin_and_partition(self, values, margin):
        result = ExecutionTimeBinner(margin).bin(values)
        selected = result.selected_values()
        assert selected, "at least one run is always selected"
        assert max(selected) <= min(selected) * (1 + margin) * (1 + 1e-9)
        # Selected and outliers partition the index set.
        assert sorted(result.selected_indices + result.outlier_indices) == list(range(len(values)))

    @given(values=durations)
    @settings(max_examples=40, deadline=None)
    def test_identical_values_all_selected(self, values):
        constant = [values[0]] * len(values)
        result = ExecutionTimeBinner(0.01).bin(constant)
        assert result.num_outliers == 0

    @given(values=durations, margin=st.floats(min_value=0.01, max_value=0.1))
    @settings(max_examples=40, deadline=None)
    def test_wider_margin_never_selects_fewer(self, values, margin):
        narrow = ExecutionTimeBinner(margin).bin(values)
        wide = ExecutionTimeBinner(margin * 2).bin(values)
        assert wide.num_selected >= narrow.num_selected


class TestTimesyncProperties:
    @given(
        cpu_time=st.floats(min_value=0.0, max_value=1e4),
        anchor_cpu=st.floats(min_value=0.0, max_value=1e4),
        round_trip=st.floats(min_value=1e-6, max_value=1e-4),
    )
    @settings(max_examples=80, deadline=None)
    def test_mapping_roundtrip(self, cpu_time, anchor_cpu, round_trip):
        anchor = TimestampAnchor(
            gpu_ticks=int(anchor_cpu * 100e6), cpu_time_after_s=anchor_cpu, round_trip_s=round_trip
        )
        calibration = DelayCalibration(round_trip, 0.0, 4)
        sync = ClockSynchronizer(anchor, 100e6, calibration)
        ticks = sync.gpu_ticks_of(cpu_time)
        assert sync.cpu_time_of(ticks) == pytest.approx(cpu_time, abs=2e-8)

    @given(offset=st.floats(min_value=0.0, max_value=100.0),
           t=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_counter_roundtrip(self, offset, t):
        counter = GPUTimestampCounter(
            ClockSpec(epoch_offset_s=offset), SimulationClock(), np.random.default_rng(0)
        )
        assert counter.sim_time_of_ticks(counter.ticks_at(t)) == pytest.approx(t, abs=2e-8)


class TestTelemetryProperties:
    @given(
        boundary=st.floats(min_value=0.1e-3, max_value=0.9e-3),
        low=st.floats(min_value=50, max_value=200),
        high=st.floats(min_value=200, max_value=700),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_average_is_convex_combination(self, boundary, low, high):
        idle = ComponentPower(low / 3, low / 3, low / 3)
        busy = ComponentPower(high / 3, high / 3, high / 3)
        segments = [
            PowerSegment(0.0, boundary, idle),
            PowerSegment(boundary, 1e-3, busy),
        ]
        average = _average_power_over(segments, 0.0, 1e-3, idle)
        assert min(low, high) - 1e-6 <= average.total_w <= max(low, high) + 1e-6
        expected = low * boundary / 1e-3 + high * (1 - boundary / 1e-3)
        assert average.total_w == pytest.approx(expected, rel=1e-6)

    @given(period=st.floats(min_value=1e-4, max_value=5e-3),
           span=st.floats(min_value=1e-3, max_value=5e-2))
    @settings(max_examples=40, deadline=None)
    def test_sample_count_bounded_by_span(self, period, span):
        counter = GPUTimestampCounter(ClockSpec(), SimulationClock(), np.random.default_rng(0))
        logger = AveragingPowerLogger(counter, period, ComponentPower(10, 10, 10))
        times = logger.sample_times_between(0.0, span)
        assert len(times) <= math.floor(span / period) + 1
        assert all(0.0 < t <= span + 1e-12 for t in times)
        assert times == sorted(times)


class TestPowerModelProperties:
    frequencies = st.floats(min_value=0.8, max_value=2.25)
    utils = st.floats(min_value=0.0, max_value=1.0)

    @given(frequency=frequencies, compute=utils, llc=utils, hbm=utils)
    @settings(max_examples=80, deadline=None)
    def test_power_bounded_by_idle_and_peak(self, frequency, compute, llc, hbm):
        descriptor = KernelActivityDescriptor(
            name="k", base_duration_s=1e-4,
            compute_utilization=compute, llc_utilization=llc, hbm_utilization=hbm,
        )
        power = MODEL.kernel_power(descriptor, OperatingPoint(frequency))
        assert power.total_w >= MODEL.idle_power().total_w - 1e-9
        # Bounded by the theoretical peak with the boost frequency scaling.
        ceiling = SPEC.power.peak_total_w * MODEL.frequency_power_scale(2.25)
        assert power.total_w <= ceiling

    @given(compute=utils)
    @settings(max_examples=40, deadline=None)
    def test_xcd_power_monotone_in_compute_utilization(self, compute):
        lighter = KernelActivityDescriptor(name="a", base_duration_s=1e-4,
                                           compute_utilization=compute * 0.5)
        heavier = KernelActivityDescriptor(name="b", base_duration_s=1e-4,
                                           compute_utilization=compute)
        point = OperatingPoint(2.1)
        assert MODEL.kernel_power(heavier, point).xcd_w >= MODEL.kernel_power(lighter, point).xcd_w - 1e-9


class TestDifferentiationProperties:
    @given(window=st.floats(min_value=1e-4, max_value=2e-3),
           execution=st.floats(min_value=5e-6, max_value=5e-3),
           sse=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_ssp_count_covers_window_and_sse(self, window, execution, sse):
        count = ssp_execution_count(window, execution, sse)
        assert count >= sse
        assert count * execution >= window - execution  # window covered once filled


class TestGuidanceProperties:
    @given(execution=st.floats(min_value=1e-6, max_value=1e-1))
    @settings(max_examples=80, deadline=None)
    def test_lookup_always_returns_entry(self, execution):
        entry = paper_guidance_table().lookup(execution)
        assert entry.runs >= 200
        assert 0 < entry.binning_margin <= 0.05
        assert entry.recommended_lois(execution) >= 4
