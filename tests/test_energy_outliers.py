"""Tests for application-level energy accounting and outlier-execution profiling."""

import pytest

from repro.analysis.energy import ApplicationEnergyModel, KernelInvocation
from repro.analysis.outliers import profile_outlier_executions


class TestApplicationEnergy:
    @pytest.fixture()
    def model(self, cb2k_result, cb8k_result):
        return ApplicationEnergyModel([cb2k_result, cb8k_result])

    def test_kernel_names_registered(self, model):
        assert model.kernel_names == ["CB-2K-GEMM", "CB-8K-GEMM"]

    def test_missing_kernel_raises(self, model):
        with pytest.raises(KeyError):
            model.result_for("nope")

    def test_energy_scales_with_calls(self, model):
        once = model.estimate([KernelInvocation("CB-8K-GEMM", calls=1)])
        thrice = model.estimate([KernelInvocation("CB-8K-GEMM", calls=3)])
        assert thrice.total_energy_j == pytest.approx(3 * once.total_energy_j)
        assert thrice.total_time_s == pytest.approx(3 * once.total_time_s)

    def test_breakdown_shares_sum_to_one(self, model):
        sequence = [
            KernelInvocation("CB-8K-GEMM", calls=2),
            KernelInvocation("CB-2K-GEMM", calls=10),
        ]
        breakdown = model.estimate(sequence)
        shares = [breakdown.share_of(name) for name in model.kernel_names]
        assert sum(shares) == pytest.approx(1.0)
        assert breakdown.dominant_kernel() == "CB-8K-GEMM"
        assert breakdown.average_power_w > 0

    def test_energy_error_from_skipping_differentiation(self, model):
        # A sequence dominated by the short kernel inherits its large SSE-vs-SSP
        # error (paper guidance #1 applied at the application level).
        short_heavy = [KernelInvocation("CB-2K-GEMM", calls=50)]
        error = model.differentiation_energy_error(short_heavy)
        assert error > 0.4
        long_heavy = [KernelInvocation("CB-8K-GEMM", calls=50)]
        assert model.differentiation_energy_error(long_heavy) < error

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            model.estimate([])
        with pytest.raises(ValueError):
            KernelInvocation("CB-2K-GEMM", calls=0)
        with pytest.raises(ValueError):
            ApplicationEnergyModel([])


class TestOutlierProfiling:
    def test_outlier_study_from_result(self, cb2k_result):
        study = profile_outlier_executions(cb2k_result)
        assert study.kernel_name == "CB-2K-GEMM"
        assert study.outlier_runs >= 1
        # Outlier executions are slower than the common case by construction.
        assert study.slowdown > 1.0
        row = study.to_row()
        assert row["kernel"] == "CB-2K-GEMM"

    def test_explicit_target_time(self, cb2k_result):
        common = cb2k_result.ssp_profile.execution_time_s
        study = profile_outlier_executions(
            cb2k_result, target_execution_time_s=common * 1.2, margin=0.2
        )
        assert study.outlier_runs >= 1

    def test_requires_binning(self, backend):
        from repro.core.profiler import FinGraVProfiler, ProfilerConfig
        from repro.kernels.workloads import cb_gemm

        profiler = FinGraVProfiler(
            backend,
            ProfilerConfig(seed=3, apply_binning=False, max_additional_runs=0,
                           refine_ssp_with_power_search=False, differentiate=False),
        )
        result = profiler.profile(cb_gemm(4096), runs=8)
        with pytest.raises(ValueError):
            profile_outlier_executions(result)
