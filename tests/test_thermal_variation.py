"""Unit tests for the thermal (warmth) model and execution-time variation."""

import math

import numpy as np
import pytest

from repro.gpu.activity import VariationSpec
from repro.gpu.thermal import ThermalModel, ThermalSpec
from repro.gpu.variation import ExecutionTimeVariationModel


class TestThermalModel:
    def test_starts_cold(self):
        assert ThermalModel().warmth == pytest.approx(0.0)

    @pytest.mark.parametrize("active", [True, False])
    def test_relax_span_composes_per_slice_steps(self, active):
        # The analytic basis of the vectorized device's idle handling: one
        # closed-form relaxation over a span equals stepping its slices one
        # by one, up to float rounding.
        rng = np.random.default_rng(42)
        for _ in range(25):
            sliced = ThermalModel()
            spanned = ThermalModel()
            sliced.step(1.3e-3, active=True)
            spanned.step(1.3e-3, active=True)
            slices = rng.uniform(1e-7, 8e-4, size=rng.integers(1, 40))
            for dt in slices:
                sliced.step(float(dt), active=active)
            spanned.relax_span(float(np.sum(slices)), active=active)
            assert spanned.warmth == pytest.approx(sliced.warmth, abs=1e-12)

    def test_relax_span_equals_step_for_a_single_slice(self):
        stepped = ThermalModel()
        relaxed = ThermalModel()
        stepped.step(2.2e-3, active=True)
        relaxed.relax_span(2.2e-3, active=True)
        assert relaxed.warmth == stepped.warmth

    def test_heats_under_load(self):
        model = ThermalModel()
        model.step(10e-3, active=True)
        assert model.warmth > 0.9

    def test_cools_when_idle(self):
        model = ThermalModel()
        model.step(10e-3, active=True)
        warm = model.warmth
        model.step(5e-3, active=False)
        assert model.warmth < warm

    def test_heating_faster_than_cooling(self):
        spec = ThermalSpec()
        assert spec.heat_tau_s < spec.cool_tau_s

    def test_warmth_bounded(self):
        model = ThermalModel()
        model.step(1.0, active=True)
        assert model.warmth <= 1.0
        model.step(10.0, active=False)
        assert model.warmth >= 0.0

    def test_zero_step_is_noop(self):
        model = ThermalModel()
        model.step(5e-3, active=True)
        warmth = model.warmth
        model.step(0.0, active=True)
        assert model.warmth == pytest.approx(warmth)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().step(-1e-3, active=True)

    def test_reset(self):
        model = ThermalModel()
        model.step(5e-3, active=True)
        model.reset(0.25)
        assert model.warmth == pytest.approx(0.25)

    def test_time_to_warmth_matches_step(self):
        model = ThermalModel()
        target = 0.5
        needed = model.time_to_warmth(target, active=True)
        model.step(needed, active=True)
        assert model.warmth == pytest.approx(target, abs=1e-6)

    def test_time_to_warmth_unreachable(self):
        model = ThermalModel()
        model.step(1.0, active=True)  # essentially 1.0
        assert math.isinf(model.time_to_warmth(0.5, active=True)) or model.time_to_warmth(
            0.5, active=True
        ) == 0.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ThermalSpec(heat_tau_s=0.0).validate()


class TestVariationModel:
    @pytest.fixture()
    def model(self):
        return ExecutionTimeVariationModel(np.random.default_rng(42))

    def test_run_factor_near_one_on_average(self, model):
        spec = VariationSpec(run_cv=0.02, outlier_probability=0.0)
        factors = [model.draw_run(spec).run_factor for _ in range(500)]
        assert np.mean(factors) == pytest.approx(1.0, abs=0.01)

    def test_outliers_marked_and_slow(self, model):
        spec = VariationSpec(run_cv=0.0, outlier_probability=1.0, outlier_scale=1.3)
        variation = model.draw_run(spec)
        assert variation.is_outlier
        assert variation.run_factor > 1.1

    def test_outlier_rate_matches_probability(self, model):
        spec = VariationSpec(outlier_probability=0.2)
        outliers = sum(model.draw_run(spec).is_outlier for _ in range(1000))
        assert 120 <= outliers <= 280

    def test_zero_cv_gives_unity_jitter(self, model):
        spec = VariationSpec(run_cv=0.0, execution_cv=0.0, outlier_probability=0.0)
        assert model.draw_execution_jitter(spec) == pytest.approx(1.0)
        assert model.draw_run(spec).run_factor == pytest.approx(1.0)

    def test_factors_never_too_small(self, model):
        spec = VariationSpec(run_cv=0.5, execution_cv=0.5)
        for _ in range(200):
            assert model.draw_execution_jitter(spec) >= model.MIN_FACTOR
            assert model.draw_run(spec).run_factor >= model.MIN_FACTOR

    def test_execution_factor_combines_run_and_jitter(self, model):
        spec = VariationSpec(run_cv=0.0, outlier_probability=1.0, outlier_scale=1.5)
        variation = model.draw_run(spec)
        assert variation.execution_factor(1.1) == pytest.approx(variation.run_factor * 1.1)

    def test_launch_delay_positive(self, model):
        delays = [model.draw_launch_delay(3e-6, 1e-6) for _ in range(200)]
        assert all(d > 0 for d in delays)

    def test_launch_delay_rejects_negative_params(self, model):
        with pytest.raises(ValueError):
            model.draw_launch_delay(-1e-6, 1e-6)
