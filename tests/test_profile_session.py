"""Tests for the resumable profiling session (streaming adaptive collection).

The bit-identity half of this module pins the refactored ``profile()`` (a thin
driver over :class:`ProfileSession`) against ``legacy_profile`` below -- a
faithful transcription of the pre-session monolithic nine-step body.  With
``adaptive=False`` the session must reproduce it byte for byte: same RNG
stream, same batch sizes, same golden-run selection, same stitched profiles.
The adaptive half covers the streaming snapshot API and the convergence
stopping rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.errors import (
    StreamingCIEstimator,
    evaluate_profile_convergence,
)
from repro.core.binning import ExecutionTimeBinner
from repro.core.differentiation import build_plan
from repro.core.profiler import (
    PROFILE_SECTIONS,
    FinGraVProfiler,
    FinGraVResult,
    ProfilerConfig,
    normalize_profile_sections,
)
from repro.core.session import STOP_REASONS, ProfileSession
from repro.core.stitching import ProfileStitcher
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm, mb_gemv


# --------------------------------------------------------------------------- #
# The pre-refactor reference implementation.
# --------------------------------------------------------------------------- #
def legacy_profile(profiler: FinGraVProfiler, kernel, runs=None):
    """The monolithic nine-step ``profile()`` body before ProfileSession.

    Kept verbatim (modulo ``self`` -> ``profiler``) as the bit-identity
    reference for the fixed-count collection policy.
    """
    config = profiler.config
    backend = profiler.backend

    # Step 1: execution time and guidance.
    execution_time = profiler.time_kernel(kernel)
    guidance = profiler.guidance_table.lookup(execution_time)
    planned_runs = runs if runs is not None else (
        config.runs if config.runs is not None else guidance.runs
    )
    margin = (
        config.binning_margin if config.binning_margin is not None
        else guidance.binning_margin
    )

    # Step 2: instrumentation calibration.
    calibration = backend.calibrate_read_delay(config.calibration_samples)

    # Steps 3-4: differentiation plan.
    plan = build_plan(
        backend,
        kernel,
        execution_time,
        warmup_tolerance=config.warmup_tolerance,
        refine_with_power_search=(
            config.differentiate and config.refine_ssp_with_power_search
        ),
    )
    if config.differentiate:
        window_fill = backend.power_sample_period_s / max(execution_time, 1e-9)
        tail = int(np.ceil(window_fill * config.ssp_tail_fraction))
        tail = min(
            max(tail, config.min_ssp_tail_executions),
            config.max_ssp_tail_executions,
        )
        executions_per_run = plan.ssp_executions + tail
    else:
        executions_per_run = plan.sse_executions

    # Step 5: execute the runs with random delays.
    records = profiler._collect_runs(kernel, planned_runs, executions_per_run, (), 0)

    # Step 6: golden-run selection by execution-time binning.
    binning = None
    golden_indices = None
    binner = ExecutionTimeBinner(margin) if config.apply_binning else None
    ssp_durations = [record.ssp_execution.duration_s for record in records]
    if binner is not None:
        if config.vectorized:
            binning = binner.extend(ssp_durations)
        else:
            binning = binner.bin(ssp_durations)
        golden_indices = [records[i].run_index for i in binning.selected_indices]

    # Step 7: sync and LOI extraction (via the stitcher).
    stitcher = ProfileStitcher(
        components=config.components,
        calibration=calibration if config.synchronize else None,
        synchronize=config.synchronize,
        vectorized=config.vectorized,
        columnar=config.columnar,
    )
    series = stitcher.collect(records)

    # Step 8: top up runs until the LOI target is met.
    target_lois = guidance.recommended_lois(execution_time)
    sse_target = min(4, target_lois) if config.differentiate else 0
    extra_budget = config.max_additional_runs
    ssp_start = profiler._ssp_start_index(plan) if config.differentiate else None

    def ssp_have():
        if config.vectorized:
            if ssp_start is None:
                return series.count_last_execution_lois(golden_indices)
            return series.count_lois(
                min_execution_index=ssp_start, golden_runs=golden_indices
            )
        if ssp_start is None:
            lois = series.lois_for_last_execution()
        else:
            lois = [
                loi for loi in series.all_lois() if loi.execution_index >= ssp_start
            ]
        return profiler._count_golden(lois, golden_indices)

    def shortfall():
        if config.vectorized:
            sse_have = series.count_lois(
                execution_index=plan.sse_index, golden_runs=golden_indices
            )
        else:
            sse_have = profiler._count_golden(
                series.lois_for_execution(plan.sse_index), golden_indices
            )
        return max(target_lois - ssp_have(), sse_target - sse_have)

    while shortfall() > 0 and extra_budget > 0:
        missing = shortfall()
        have_total = max(ssp_have(), 1)
        observed_yield = max(have_total / max(len(records), 1), 0.01)
        needed = int(np.ceil(missing / observed_yield))
        batch = min(max(needed, 16), extra_budget)
        extra_records = profiler._collect_runs(
            kernel, batch, executions_per_run, (), start_index=len(records)
        )
        records = records + extra_records
        extra_budget -= batch
        if binner is not None and extra_records:
            if config.vectorized:
                binning = binner.extend(
                    record.ssp_execution.duration_s for record in extra_records
                )
            else:
                binner = ExecutionTimeBinner(margin)
                ssp_durations = [
                    record.ssp_execution.duration_s for record in records
                ]
                binning = binner.bin(ssp_durations)
            golden_indices = [records[i].run_index for i in binning.selected_indices]
        if config.vectorized:
            series = stitcher.extend(series, extra_records)
        else:
            series = stitcher.collect(records)

    # Step 9: stitch the profiles.
    base_metadata = {"preceding": []}
    sections = PROFILE_SECTIONS
    if config.result_mode == "slim":
        sections = normalize_profile_sections(config.profile_sections)
    build = tuple(
        name for name in PROFILE_SECTIONS
        if name in ("ssp", "sse") or name in sections
    )
    built = stitcher.section_profiles(
        series,
        build,
        golden_runs=golden_indices,
        sse_index=plan.sse_index,
        min_execution_index=profiler._ssp_start_index(plan),
        metadata=base_metadata,
    )
    result = FinGraVResult(
        kernel_name=backend.kernel_name(kernel),
        execution_time_s=execution_time,
        guidance=guidance,
        plan=plan,
        calibration=calibration,
        runs=tuple(records),
        binning=binning,
        ssp_profile=built["ssp"],
        sse_profile=built["sse"],
        run_profile=built.get("run"),
        config=config,
        metadata=base_metadata,
    )
    if config.result_mode == "slim":
        return result.slim(sections)
    return result


# --------------------------------------------------------------------------- #
# Comparison helpers.
# --------------------------------------------------------------------------- #
def make_profiler(backend_seed: int, **config_overrides) -> FinGraVProfiler:
    backend = SimulatedDeviceBackend(
        spec=mi300x_spec(), seed=backend_seed, config=BackendConfig()
    )
    return FinGraVProfiler(backend, ProfilerConfig(**config_overrides))


def assert_profiles_equal(a, b) -> None:
    assert len(a) == len(b)
    assert np.array_equal(a.times(), b.times())
    assert a.components == b.components
    for component in a.components:
        assert np.array_equal(a.series(component), b.series(component))


def assert_bit_identical(new, old) -> None:
    """``new`` (session path) must match ``old`` (legacy path) byte for byte,
    except for the purely additive ``collection`` audit in the metadata."""
    assert new.kernel_name == old.kernel_name
    assert new.execution_time_s == old.execution_time_s
    assert new.num_runs == old.num_runs
    assert new.golden_run_indices == old.golden_run_indices
    for attribute in ("ssp_profile", "sse_profile"):
        assert_profiles_equal(getattr(new, attribute), getattr(old, attribute))
    if old.run_profile is not None:
        assert_profiles_equal(new.run_profile, old.run_profile)
    else:
        assert new.run_profile is None
    for new_run, old_run in zip(new.runs, old.runs):
        assert new_run.run_index == old_run.run_index
        assert new_run.pre_delay_s == old_run.pre_delay_s
        assert new_run.ssp_execution.duration_s == old_run.ssp_execution.duration_s
    metadata = dict(new.metadata)
    collection = metadata.pop("collection")
    assert metadata == dict(old.metadata)
    assert collection["adaptive"] is False
    assert collection["runs_saved"] == 0


# --------------------------------------------------------------------------- #
# Fixed-count policy: bit-identity with the pre-refactor monolith.
# --------------------------------------------------------------------------- #
SCENARIOS = {
    # The test_profiler.py fixture configurations (reduced top-up budgets
    # where the full budget only adds wall time, not code-path coverage).
    "cb2k": dict(kernel_size=2048, backend_seed=11,
                 config=dict(seed=211, max_additional_runs=300), runs=40),
    "cb8k": dict(kernel_size=8192, backend_seed=12,
                 config=dict(seed=212, max_additional_runs=100), runs=30),
    "gemv8k": dict(kernel="gemv", kernel_size=8192, backend_seed=13,
                   config=dict(seed=213, max_additional_runs=60), runs=20),
    "unsynchronized": dict(kernel_size=2048, backend_seed=21,
                           config=dict(seed=221, synchronize=False,
                                       max_additional_runs=80), runs=20),
    "no-binning": dict(kernel_size=2048, backend_seed=22,
                       config=dict(seed=222, apply_binning=False,
                                   max_additional_runs=80), runs=20),
    "sse-only": dict(kernel_size=2048, backend_seed=23,
                     config=dict(seed=223, differentiate=False,
                                 max_additional_runs=80), runs=20),
    "legacy-engine": dict(kernel_size=2048, backend_seed=24,
                          config=dict(seed=224, vectorized=False,
                                      max_additional_runs=80), runs=20),
    "slim": dict(kernel_size=2048, backend_seed=25,
                 config=dict(seed=225, result_mode="slim",
                             max_additional_runs=80), runs=20),
}


def build_scenario(name: str):
    spec = SCENARIOS[name]
    kernel = (
        mb_gemv(spec["kernel_size"]) if spec.get("kernel") == "gemv"
        else cb_gemm(spec["kernel_size"])
    )
    return kernel, spec["backend_seed"], spec["config"], spec["runs"]


class TestFixedModeBitIdentity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_profile_matches_legacy(self, name):
        kernel, backend_seed, config, runs = build_scenario(name)
        old = legacy_profile(make_profiler(backend_seed, **config), kernel, runs=runs)
        new = make_profiler(backend_seed, **config).profile(kernel, runs=runs)
        if SCENARIOS[name]["config"].get("result_mode") == "slim":
            # Slim results drop the raw runs; compare the retained payload.
            assert new.kernel_name == old.kernel_name
            assert new.num_runs == old.num_runs
            assert new.golden_run_indices == old.golden_run_indices
            for section in new.sections:
                assert_profiles_equal(new.profiles[section], old.profiles[section])
            summary = dict(new.summary_data)
            assert summary.pop("collection")["adaptive"] is False
            assert summary == dict(old.summary_data)
        else:
            assert_bit_identical(new, old)

    def test_session_final_snapshot_matches_result(self):
        kernel, backend_seed, config, runs = build_scenario("cb2k")
        session = make_profiler(backend_seed, **config).session(kernel, runs=runs)
        snapshots = list(session.iter_profiles())
        assert snapshots[-1].final
        result = session.result()
        assert_profiles_equal(snapshots[-1].ssp_profile, result.ssp_profile)
        assert_profiles_equal(snapshots[-1].sse_profile, result.sse_profile)

    def test_fixed_mode_collects_one_initial_batch(self):
        kernel, backend_seed, config, runs = build_scenario("gemv8k")
        session = make_profiler(backend_seed, **config).session(kernel, runs=runs)
        assert session.step()
        assert session.runs_collected == runs
        session.run_to_completion()
        assert session.stop_reason in STOP_REASONS
        audit = session.collection_audit()
        assert audit["adaptive"] is False
        assert audit["runs_saved"] == 0
        assert audit["runs_collected"] == session.runs_collected


# --------------------------------------------------------------------------- #
# Streaming snapshots and the adaptive stopping rule.
# --------------------------------------------------------------------------- #
def adaptive_profiler(**overrides) -> FinGraVProfiler:
    config = dict(seed=212, adaptive=True, max_additional_runs=300)
    config.update(overrides)
    return make_profiler(12, **config)


class TestAdaptiveSession:
    @pytest.fixture(scope="class")
    def adaptive_snapshots(self):
        session = adaptive_profiler().session(cb_gemm(8192), runs=40)
        return list(session.iter_profiles()), session

    def test_snapshot_stream_shape(self, adaptive_snapshots):
        snapshots, session = adaptive_snapshots
        counts = [snapshot.runs_collected for snapshot in snapshots]
        assert counts == sorted(counts) and len(set(counts)) == len(counts)
        assert [s.final for s in snapshots] == [False] * (len(snapshots) - 1) + [True]
        assert all(s.stop_reason is None for s in snapshots[:-1])
        assert snapshots[-1].stop_reason in STOP_REASONS
        assert session.finished

    def test_adaptive_converges_early_on_long_kernel(self, adaptive_snapshots):
        # CB-8K-GEMM's SSP estimate tightens well inside the planned 40 runs.
        snapshots, session = adaptive_snapshots
        final = snapshots[-1]
        assert final.stop_reason == "converged"
        assert final.runs_collected < final.planned_runs
        audit = session.collection_audit()
        assert audit["runs_saved"] == final.planned_runs - final.runs_collected
        assert audit["final_relative_ci"] <= session.config.convergence_rtol

    def test_diagnostics_cover_both_sections(self, adaptive_snapshots):
        snapshots, _ = adaptive_snapshots
        for snapshot in snapshots:
            assert [d.section for d in snapshot.diagnostics] == ["ssp", "sse"]
            for diagnostics in snapshot.diagnostics:
                payload = diagnostics.to_dict()
                assert payload["section"] in ("ssp", "sse")
                assert isinstance(payload["converged"], bool)

    def test_snapshot_prefix_property(self, adaptive_snapshots):
        """Every snapshot equals a fixed-count profile of its run prefix.

        The batched pre-delay draws are stream-identical to one large draw,
        so an adaptive session that has collected k runs must hold exactly
        the state a fixed profiler reaches with ``runs=k`` and no top-up.
        """
        snapshots, _ = adaptive_snapshots
        for snapshot in snapshots:
            reference = make_profiler(
                12, seed=212, max_additional_runs=0
            ).profile(cb_gemm(8192), runs=snapshot.runs_collected)
            assert_profiles_equal(snapshot.ssp_profile, reference.ssp_profile)
            assert_profiles_equal(snapshot.sse_profile, reference.sse_profile)

    def test_finished_session_yields_final_snapshot_once(self, adaptive_snapshots):
        _, session = adaptive_snapshots
        replay = list(session.iter_profiles())
        assert len(replay) == 1 and replay[0].final
        assert not session.step()

    def test_result_before_finish_raises(self):
        session = adaptive_profiler().session(cb_gemm(8192), runs=40)
        with pytest.raises(ValueError, match="still collecting"):
            session.result()
        with pytest.raises(ValueError, match="no runs collected"):
            session.snapshot()

    def test_adaptive_result_records_stop_decision(self, adaptive_snapshots):
        _, session = adaptive_snapshots
        result = session.result()
        collection = result.metadata["collection"]
        assert collection["adaptive"] is True
        assert collection["stop_reason"] == "converged"
        assert collection["runs_saved"] > 0
        assert result.summary()["collection"] == collection

    def test_adaptive_stays_close_to_fixed_estimate(self, adaptive_snapshots):
        _, session = adaptive_snapshots
        adaptive_result = session.result()
        fixed_result = make_profiler(
            12, seed=212, max_additional_runs=300
        ).profile(cb_gemm(8192), runs=40)
        rtol = session.config.convergence_rtol
        adaptive_ssp = adaptive_result.ssp_profile.mean_power_w("total")
        fixed_ssp = fixed_result.ssp_profile.mean_power_w("total")
        assert abs(adaptive_ssp - fixed_ssp) / fixed_ssp <= rtol

    def test_invalid_run_count_rejected_at_session_setup(self):
        with pytest.raises(ValueError, match="run count"):
            adaptive_profiler().session(cb_gemm(2048), runs=0)


# --------------------------------------------------------------------------- #
# ProfilerConfig numeric validation.
# --------------------------------------------------------------------------- #
class TestProfilerConfigValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("runs", 0),
            ("runs", -3),
            ("max_additional_runs", -1),
            ("calibration_samples", 0),
            ("timing_executions", 0),
            ("convergence_rtol", 0.0),
            ("convergence_rtol", -0.1),
            ("min_runs", 0),
            ("checkpoint_every", 0),
            ("checkpoint_every", -8),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            ProfilerConfig(**{field: value})

    def test_valid_edges_accepted(self):
        ProfilerConfig(runs=None)
        ProfilerConfig(max_additional_runs=0)
        ProfilerConfig(adaptive=True, convergence_rtol=0.2,
                       min_runs=1, checkpoint_every=1)


# --------------------------------------------------------------------------- #
# The streaming CI estimator backing the stopping rule.
# --------------------------------------------------------------------------- #
class TestStreamingCIEstimator:
    def test_batched_updates_match_direct_computation(self):
        rng = np.random.default_rng(99)
        values = rng.normal(700.0, 25.0, size=257)
        streamed = StreamingCIEstimator()
        for chunk in np.array_split(values, 7):
            streamed.update(chunk)
        direct = StreamingCIEstimator.from_values(values)
        assert streamed.count == direct.count == values.size
        assert streamed.mean == pytest.approx(float(values.mean()), rel=1e-12)
        assert streamed.variance == pytest.approx(
            float(values.var(ddof=1)), rel=1e-9
        )
        assert direct.variance == pytest.approx(
            float(values.var(ddof=1)), rel=1e-9
        )

    def test_no_interval_below_two_samples(self):
        estimator = StreamingCIEstimator()
        assert estimator.half_width == float("inf")
        estimator.update(np.array([5.0]))
        assert estimator.half_width == float("inf")
        estimator.update(np.array([6.0]))
        assert np.isfinite(estimator.half_width)

    def test_relative_width_needs_positive_scale(self):
        estimator = StreamingCIEstimator.from_values(np.array([-1.0, 1.0]))
        assert estimator.relative_half_width() == float("inf")
        assert np.isfinite(estimator.relative_half_width(reference=10.0))

    def test_empty_update_is_a_noop(self):
        estimator = StreamingCIEstimator.from_values(np.array([1.0, 2.0]))
        estimator.update(np.zeros(0))
        assert estimator.count == 2


class TestConvergenceRule:
    def test_tight_samples_converge(self):
        rng = np.random.default_rng(3)
        values = rng.normal(700.0, 1.0, size=400)
        times = rng.uniform(0.0, 1e-4, size=400)
        verdict = evaluate_profile_convergence(
            "ssp", values, times, 1e-4, rtol=0.05
        )
        assert verdict.converged
        assert verdict.relative_half_width <= 0.05

    def test_noisy_or_sparse_samples_do_not_converge(self):
        rng = np.random.default_rng(4)
        noisy = evaluate_profile_convergence(
            "ssp",
            rng.normal(700.0, 400.0, size=8),
            rng.uniform(0.0, 1e-4, size=8),
            1e-4,
            rtol=0.01,
        )
        assert not noisy.converged
        empty = evaluate_profile_convergence(
            "sse", np.zeros(0), np.zeros(0), 1e-4, rtol=0.05
        )
        assert not empty.converged
        assert empty.relative_half_width == float("inf")

    def test_single_sample_bin_blocks_convergence(self):
        # Three tight samples in bin 0, one lone sample in the last bin:
        # the lone bin cannot carry a CI, so the section must not converge.
        values = np.array([700.0, 700.1, 699.9, 700.0])
        times = np.array([1e-6, 2e-6, 3e-6, 9.9e-5])
        verdict = evaluate_profile_convergence(
            "ssp", values, times, 1e-4, rtol=0.05, bins=4
        )
        assert not verdict.converged
        assert verdict.worst_relative_half_width == float("inf")

    def test_parameter_validation(self):
        values = np.array([1.0, 2.0])
        times = np.array([0.0, 1.0])
        with pytest.raises(ValueError, match="rtol"):
            evaluate_profile_convergence("ssp", values, times, 1.0, rtol=0.0)
        with pytest.raises(ValueError, match="bin"):
            evaluate_profile_convergence("ssp", values, times, 1.0, rtol=0.1, bins=0)
        with pytest.raises(ValueError, match="two samples"):
            evaluate_profile_convergence(
                "ssp", values, times, 1.0, rtol=0.1, min_samples=1
            )
