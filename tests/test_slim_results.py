"""Tests for the slim result mode (profiles + summary, no raw runs)."""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.profiler import (
    FinGraVProfiler,
    FinGraVResult,
    ProfilerConfig,
    SlimFinGraVResult,
    normalize_profile_sections,
)
from repro.experiments.common import make_backend, make_profiler
from repro.experiments.sweep import ProfileJob, configured_result_mode, execute_job, job_key, kernel_spec
from repro.kernels.workloads import cb_gemm


SMALL_JOB = ProfileJob(
    job_id="slim-test/CB-2K-GEMM",
    kernel=kernel_spec("cb_gemm", 2048),
    runs=10,
    backend_seed=71,
    profiler_seed=171,
    max_additional_runs=40,
)


@pytest.fixture(scope="module")
def full_and_slim() -> tuple[FinGraVResult, SlimFinGraVResult]:
    full = execute_job(dataclasses.replace(SMALL_JOB, result_mode="full"))
    slim = execute_job(dataclasses.replace(SMALL_JOB, result_mode="slim"))
    return full, slim


class TestSlimEquivalence:
    def test_types_and_flags(self, full_and_slim):
        full, slim = full_and_slim
        assert isinstance(full, FinGraVResult) and not full.is_slim
        assert isinstance(slim, SlimFinGraVResult) and slim.is_slim
        assert slim.slim() is slim

    def test_profiles_bit_identical(self, full_and_slim):
        full, slim = full_and_slim
        for attribute in ("ssp_profile", "sse_profile", "run_profile"):
            pf, ps = getattr(full, attribute), getattr(slim, attribute)
            assert len(pf) == len(ps)
            assert np.array_equal(pf.times(), ps.times())
            assert pf.components == ps.components
            for component in pf.components:
                assert np.array_equal(pf.series(component), ps.series(component))

    def test_summary_and_metadata_identical(self, full_and_slim):
        full, slim = full_and_slim
        full_summary = full.summary()
        slim_summary = slim.summary()
        assert full_summary == slim_summary
        assert full.num_runs == slim.num_runs
        assert full.num_golden_runs == slim.num_golden_runs
        assert full.golden_run_indices == slim.golden_run_indices
        assert full.executions_per_run == slim.executions_per_run
        assert full.ssp_loi_count == slim.ssp_loi_count
        if not full.sse_profile.is_empty and not full.ssp_profile.is_empty:
            assert full.sse_vs_ssp_error() == slim.sse_vs_ssp_error()
        else:
            with pytest.raises(ValueError):
                slim.sse_vs_ssp_error()

    def test_slim_projection_of_full_matches_profiler_slim(self, full_and_slim):
        full, slim = full_and_slim
        projected = full.slim()
        assert projected.summary() == slim.summary()
        assert projected.golden_run_indices == slim.golden_run_indices
        assert np.array_equal(
            projected.ssp_profile.times(), slim.ssp_profile.times()
        )

    def test_slim_payload_smaller(self, full_and_slim):
        full, slim = full_and_slim
        full_bytes = len(pickle.dumps(full, protocol=pickle.HIGHEST_PROTOCOL))
        slim_bytes = len(pickle.dumps(slim, protocol=pickle.HIGHEST_PROTOCOL))
        assert slim_bytes < full_bytes
        clone = pickle.loads(pickle.dumps(slim, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone.summary() == slim.summary()

    def test_raw_run_access_raises(self, full_and_slim):
        _, slim = full_and_slim
        with pytest.raises(AttributeError, match="no raw runs"):
            _ = slim.runs
        with pytest.raises(AttributeError, match="no binning"):
            _ = slim.binning


class TestDriverOutputsUnchanged:
    def test_table1_measurement_identical(self, full_and_slim):
        from repro.core.guidance import paper_guidance_table
        from repro.experiments.table1 import _measure_row

        full, slim = full_and_slim
        entry = paper_guidance_table().lookup(full.execution_time_s)
        assert _measure_row(entry, full).to_row() == _measure_row(entry, slim).to_row()

    def test_fig8_style_assembly_identical(self, full_and_slim):
        full, slim = full_and_slim
        for result_pair in zip(
            full.run_profile.binned_mean("total", bins=10),
            slim.run_profile.binned_mean("total", bins=10),
        ):
            assert np.array_equal(*result_pair)
        assert full.ssp_profile.mean_power_w("total") == slim.ssp_profile.mean_power_w("total")


class TestResultModePlumbing:
    def test_unknown_result_mode_rejected(self):
        backend = make_backend(seed=1)
        with pytest.raises(ValueError, match="result_mode"):
            FinGraVProfiler(backend, ProfilerConfig(result_mode="compact"))

    def test_make_profiler_passes_mode_through(self):
        backend = make_backend(seed=1)
        profiler = make_profiler(backend, result_mode="slim")
        assert profiler.config.result_mode == "slim"

    def test_result_mode_changes_cache_key(self):
        assert job_key(SMALL_JOB) != job_key(
            dataclasses.replace(SMALL_JOB, result_mode="slim")
        )

    def test_configured_result_mode_env_override(self, monkeypatch):
        monkeypatch.delenv("FINGRAV_RESULT_MODE", raising=False)
        assert configured_result_mode() == "slim"
        assert configured_result_mode("full") == "full"
        monkeypatch.setenv("FINGRAV_RESULT_MODE", "full")
        assert configured_result_mode() == "full"
        monkeypatch.setenv("FINGRAV_RESULT_MODE", "SLIM")
        assert configured_result_mode("full") == "slim"
        monkeypatch.setenv("FINGRAV_RESULT_MODE", "bogus")
        assert configured_result_mode() == "slim"

    def test_profiler_slim_mode_end_to_end(self):
        backend = make_backend(seed=5)
        profiler = make_profiler(backend, seed=105, max_additional_runs=20, result_mode="slim")
        result = profiler.profile(cb_gemm(2048), runs=6)
        assert isinstance(result, SlimFinGraVResult)
        assert not result.ssp_profile.is_empty


class TestProfileSections:
    def section_result(self, sections) -> SlimFinGraVResult:
        return execute_job(
            dataclasses.replace(
                SMALL_JOB, result_mode="slim", profile_sections=sections
            )
        )

    def test_unknown_section_rejected_early(self):
        backend = make_backend(seed=1)
        with pytest.raises(ValueError, match="unknown profile sections"):
            FinGraVProfiler(
                backend, ProfilerConfig(profile_sections=("ssp", "golden"))
            )
        with pytest.raises(ValueError, match="unknown profile sections"):
            normalize_profile_sections(["bogus"])

    def test_sections_deduplicated_and_canonically_ordered(self):
        assert normalize_profile_sections(None) == ("ssp", "sse", "run")
        assert normalize_profile_sections(("run", "ssp", "run")) == ("ssp", "run")
        assert normalize_profile_sections(()) == ()

    def test_declared_sections_retained_others_raise(self, full_and_slim):
        full, _ = full_and_slim
        result = self.section_result(("ssp", "sse"))
        assert result.sections == ("ssp", "sse")
        assert np.array_equal(result.ssp_profile.times(), full.ssp_profile.times())
        assert np.array_equal(result.sse_profile.times(), full.sse_profile.times())
        with pytest.raises(AttributeError, match="profile_sections"):
            _ = result.run_profile

    def test_empty_sections_keep_summary_and_error(self, full_and_slim):
        full, _ = full_and_slim
        result = self.section_result(())
        assert result.sections == ()
        assert result.profiles == {}
        assert result.summary() == full.summary()
        assert result.ssp_loi_count == full.ssp_loi_count
        if "sse_vs_ssp_error" in full.summary():
            # The error is answered from the snapshot -- same value as live.
            assert result.sse_vs_ssp_error() == full.sse_vs_ssp_error()
        else:
            with pytest.raises(ValueError):
                result.sse_vs_ssp_error()
        # Non-total components have no snapshot: ValueError, not
        # AttributeError (summary_from_result and friends tolerate exactly
        # ValueError).
        with pytest.raises(ValueError, match="snapshot"):
            result.sse_vs_ssp_error("xcd")
        with pytest.raises(AttributeError, match="profile_sections"):
            _ = result.ssp_profile

    def test_run_only_sections_skip_ssp_sse_payload(self, full_and_slim):
        full, _ = full_and_slim
        result = self.section_result(("run",))
        assert result.sections == ("run",)
        assert np.array_equal(result.run_profile.times(), full.run_profile.times())
        # Summary (built from ssp/sse before they were dropped) is intact.
        assert result.summary() == full.summary()

    def test_run_exclusion_skips_run_stitching(self, monkeypatch):
        # When no declared section needs "run", the profiler never builds it.
        from repro.core import stitching as stitching_module

        calls: list[tuple[str, ...]] = []
        real = stitching_module.ProfileStitcher.section_profiles

        def recording(self, series, sections, **kwargs):
            calls.append(tuple(sections))
            return real(self, series, sections, **kwargs)

        monkeypatch.setattr(
            stitching_module.ProfileStitcher, "section_profiles", recording
        )
        self.section_result(("ssp",))
        assert calls == [("ssp", "sse")]  # sse rides along for the summary
        calls.clear()
        execute_job(dataclasses.replace(SMALL_JOB, result_mode="full"))
        assert calls == [("ssp", "sse", "run")]

    def test_sections_ignored_in_full_mode(self):
        # FINGRAV_RESULT_MODE=full must be able to override a slim driver
        # default while its section declaration is still set on the config.
        result = execute_job(
            dataclasses.replace(
                SMALL_JOB, result_mode="full", profile_sections=("ssp",)
            )
        )
        assert isinstance(result, FinGraVResult)
        assert result.run_profile is not None
        assert not result.run_profile.is_empty
        assert not result.ssp_profile.is_empty

    def test_slim_narrowing_and_invalid_widening(self, full_and_slim):
        full, slim = full_and_slim
        narrowed = slim.slim(("ssp",))
        assert narrowed.sections == ("ssp",)
        assert narrowed.summary() == slim.summary()
        only_run = self.section_result(("run",))
        with pytest.raises(ValueError, match="already .*dropped|dropped"):
            only_run.slim(("ssp",))
        with pytest.raises(ValueError, match="never built"):
            # A full result whose run profile was never stitched cannot
            # retain it -- but full results from profile() always have it;
            # simulate via replace.
            dataclasses.replace(full, run_profile=None).slim(("run",))

    def test_sections_change_cache_key(self):
        slim_job = dataclasses.replace(SMALL_JOB, result_mode="slim")
        assert job_key(slim_job) != job_key(
            dataclasses.replace(slim_job, profile_sections=("ssp", "sse"))
        )

    def test_driver_jobs_declare_expected_sections(self):
        from repro.experiments import ablations, fig6, fig7, fig8, fig9, fig10, table1

        assert all(j.profile_sections == ("ssp", "sse") for j in fig7.fig7_jobs())
        assert all(j.profile_sections == () for j in table1.table1_jobs())
        assert all(j.profile_sections == ("run",) for j in fig6.fig6_jobs())
        assert all(j.profile_sections == ("run",) for j in fig8.fig8_jobs())
        assert all(j.profile_sections == ("ssp",) for j in fig10.fig10_jobs())
        assert all(
            j.profile_sections == () for j in ablations.sampler_ablation_jobs()
        )
        fig9_jobs = fig9.fig9_jobs()
        isolated = [j for j in fig9_jobs if j.job_id.startswith("fig9/isolated/")]
        assert isolated and all(j.profile_sections == ("ssp",) for j in isolated)
