"""Unit tests for the CPU-side launch path and the multi-GPU platform."""

import pytest

from repro.gpu.activity import KernelActivityDescriptor, flat_profile_phases
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.device import SimulatedGPU
from repro.gpu.platform import InfinityPlatform
from repro.gpu.scheduler import KernelLauncher, LaunchConfig
from repro.gpu.spec import mi300x_platform_spec, mi300x_spec
from repro.kernels.workloads import cb_gemm


@pytest.fixture()
def launcher(device):
    return KernelLauncher(device, LaunchConfig())


@pytest.fixture()
def descriptor(spec):
    return cb_gemm(4096).activity_descriptor(spec)


class TestKernelLauncher:
    def test_launch_returns_observed_times(self, launcher, descriptor):
        observed = launcher.launch(descriptor)
        assert observed.cpu_end_s > observed.cpu_start_s
        assert observed.kernel_name == descriptor.name

    def test_observed_duration_close_to_ground_truth(self, launcher, descriptor):
        observed = launcher.launch(descriptor)
        assert observed.cpu_duration_s == pytest.approx(
            observed.ground_truth.duration_s, rel=0.05
        )

    def test_launch_latency_delays_start(self, launcher, descriptor):
        submit = launcher.device.now_s()
        observed = launcher.launch(descriptor)
        assert observed.ground_truth.start_s > submit

    def test_launch_sequence_indices_and_ordering(self, launcher, descriptor):
        observed = launcher.launch_sequence(descriptor, executions=4)
        assert [o.execution_index for o in observed] == [0, 1, 2, 3]
        for a, b in zip(observed, observed[1:]):
            assert b.cpu_start_s > a.cpu_end_s

    def test_launch_sequence_start_index(self, launcher, descriptor):
        observed = launcher.launch_sequence(descriptor, executions=2, start_index=5)
        assert [o.execution_index for o in observed] == [5, 6]

    def test_launch_sequence_rejects_zero(self, launcher, descriptor):
        with pytest.raises(ValueError):
            launcher.launch_sequence(descriptor, executions=0)

    def test_invalid_launch_config_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig(launch_latency_s=-1.0).validate()

    def test_sequence_timings_match_launch_sequence(self, spec, descriptor):
        timed = KernelLauncher(SimulatedGPU(spec, seed=77))
        observed = KernelLauncher(SimulatedGPU(spec, seed=77))
        timings = timed.sequence_timings(descriptor, executions=6, start_index=3)
        reference = observed.launch_sequence(descriptor, executions=6, start_index=3)
        assert [t.index for t in timings] == [o.execution_index for o in reference]
        assert [t.cpu_start_s for t in timings] == [o.cpu_start_s for o in reference]
        assert [t.cpu_end_s for t in timings] == [o.cpu_end_s for o in reference]
        assert all(t.kernel_name == descriptor.name for t in timings)


def submicrosecond_descriptor(duration_s=0.5e-6):
    """A ~0.5 us kernel: shorter than the host timestamp-error spread."""
    return KernelActivityDescriptor(
        name="tiny-kernel",
        base_duration_s=duration_s,
        compute_utilization=0.3,
        cold_executions=0,
        phases=flat_profile_phases(),
    )


class TestObservedDurationClamp:
    """Regression: independent start/end timestamp errors used to let
    sub-microsecond kernels report ``cpu_end_s < cpu_start_s``."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_observed_duration_never_negative(self, spec, vectorized):
        device = SimulatedGPU(spec, seed=5, vectorized=vectorized)
        launcher = KernelLauncher(device, LaunchConfig())
        descriptor = submicrosecond_descriptor()
        observed = launcher.launch_sequence(descriptor, executions=300)
        durations = [o.cpu_duration_s for o in observed]
        assert min(durations) >= 0.0
        # The scenario actually exercises the clamp: with a 0.6 us error on
        # each timestamp, a 0.5 us kernel inverts frequently.
        assert durations.count(0.0) > 0
        for o in observed:
            assert o.ground_truth.duration_s > 0

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_backend_run_accepts_submicrosecond_kernel(self, spec, vectorized):
        # Before the clamp, ExecutionTiming's validation made this raise.
        backend = SimulatedDeviceBackend(
            spec=mi300x_spec(), seed=5, config=BackendConfig(vectorized=vectorized)
        )
        record = backend.run(
            submicrosecond_descriptor(), executions=120, pre_delay_s=0.0, run_index=0
        )
        assert all(t.duration_s >= 0 for t in record.executions)


class TestInfinityPlatform:
    @pytest.fixture()
    def platform(self):
        return InfinityPlatform(mi300x_platform_spec())

    def test_fully_connected(self, platform):
        assert platform.is_fully_connected()
        assert platform.topology.number_of_edges() == 8 * 7 // 2

    def test_peers_of_each_rank(self, platform):
        for rank in range(platform.num_gpus):
            peers = platform.peers_of(rank)
            assert len(peers) == 7
            assert rank not in peers

    def test_link_bandwidth_and_latency(self, platform):
        assert platform.link_bandwidth(0, 1) == pytest.approx(64e9)
        assert platform.link_latency(0, 1) > 0

    def test_no_self_link(self, platform):
        with pytest.raises(ValueError):
            platform.link_bandwidth(0, 0)

    def test_invalid_rank_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.peers_of(99)

    def test_parallel_transfer_scaling(self, platform):
        small = platform.parallel_peer_transfer(8 * 1024)
        large = platform.parallel_peer_transfer(128 * 1024 ** 2)
        assert small.latency_bound
        assert not large.latency_bound
        assert large.duration_s > small.duration_s

    def test_parallel_transfer_bandwidth_bounded_by_link(self, platform):
        estimate = platform.parallel_peer_transfer(128 * 1024 ** 2)
        # Effective bandwidth cannot exceed aggregate link bandwidth.
        assert estimate.effective_bandwidth_bytes_per_s <= platform.aggregate_fabric_bandwidth(0)

    def test_negative_transfer_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.parallel_peer_transfer(-1.0)

    def test_profiled_gpu_available(self, platform):
        assert platform.profiled_gpu.spec.num_xcds == 8
