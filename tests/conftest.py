"""Shared fixtures for the FinGraV reproduction test suite.

Expensive artefacts (full profiling results) are produced once per session at
a reduced run budget and shared across test modules; unit tests build their
own small objects.
"""

from __future__ import annotations

import pytest

from repro.core.profiler import FinGraVProfiler, ProfilerConfig
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.device import SimulatedGPU
from repro.gpu.spec import mi300x_platform_spec, mi300x_spec
from repro.kernels.workloads import cb_gemm, mb_gemv


@pytest.fixture(scope="session")
def spec():
    """The default simulated-MI300X specification."""
    return mi300x_spec()


@pytest.fixture(scope="session")
def platform_spec():
    return mi300x_platform_spec()


@pytest.fixture()
def device(spec):
    """A fresh simulated GPU per test."""
    return SimulatedGPU(spec, seed=123)


@pytest.fixture()
def backend(spec):
    """A fresh simulated profiling backend per test."""
    return SimulatedDeviceBackend(spec=spec, seed=123, config=BackendConfig())


@pytest.fixture()
def small_profiler(backend):
    """A profiler with a small run budget for fast tests."""
    return FinGraVProfiler(
        backend, ProfilerConfig(seed=7, max_additional_runs=120)
    )


# --------------------------------------------------------------------------- #
# Session-scoped profiling results shared across test modules.
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def cb2k_result():
    """A full FinGraV result for CB-2K-GEMM at a reduced run budget."""
    backend = SimulatedDeviceBackend(spec=mi300x_spec(), seed=11)
    profiler = FinGraVProfiler(backend, ProfilerConfig(seed=211, max_additional_runs=300))
    return profiler.profile(cb_gemm(2048), runs=40)


@pytest.fixture(scope="session")
def cb8k_result():
    """A full FinGraV result for CB-8K-GEMM (throttled kernel)."""
    backend = SimulatedDeviceBackend(spec=mi300x_spec(), seed=12)
    profiler = FinGraVProfiler(backend, ProfilerConfig(seed=212, max_additional_runs=200))
    return profiler.profile(cb_gemm(8192), runs=50)


@pytest.fixture(scope="session")
def gemv8k_result():
    """A full FinGraV result for MB-8K-GEMV (memory-bound kernel)."""
    backend = SimulatedDeviceBackend(spec=mi300x_spec(), seed=13)
    profiler = FinGraVProfiler(backend, ProfilerConfig(seed=213, max_additional_runs=400))
    return profiler.profile(mb_gemv(8192), runs=120)
