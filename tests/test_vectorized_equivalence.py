"""Equivalence tests: the vectorized stitching engine vs the legacy pipeline.

The PR's contract is that vectorization changes *nothing* about the numbers:
LOI extraction, profile stitching and the full nine-step profiler must produce
bit-identical results whether the NumPy path or the pure-Python reference path
is used.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler import FinGraVProfiler, ProfilerConfig
from repro.core.records import ExecutionTiming, PowerReading, RunRecord, TimestampAnchor
from repro.core.timesync import (
    extract_lois,
    extract_lois_reference,
    extract_lois_unsynchronized,
    extract_lois_unsynchronized_reference,
    match_execution,
    match_execution_positions,
    synchronizer_for_run,
)
from repro.gpu.backend import SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm

COUNTER_HZ = 100e6
EPOCH_OFFSET = 7.25


def ticks(cpu_time_s: float) -> int:
    return int(round((cpu_time_s + EPOCH_OFFSET) * COUNTER_HZ))


def synthetic_run(readings_at, executions_spec, run_index=0, gapless=False):
    """Build a run with readings at chosen CPU times and explicit executions.

    ``executions_spec`` is a list of (start, end) tuples; ``gapless`` asserts
    they are back-to-back so boundary ties are exercised.
    """
    timing = tuple(
        ExecutionTiming(index=i, cpu_start_s=start, cpu_end_s=end)
        for i, (start, end) in enumerate(executions_spec)
    )
    if gapless:
        for before, after in zip(timing, timing[1:]):
            assert before.cpu_end_s == after.cpu_start_s
    readings = tuple(
        PowerReading(
            gpu_timestamp_ticks=ticks(t),
            window_s=1e-3,
            total_w=300.0 + i,
            components={"xcd": 200.0 + i, "iod": 60.0, "hbm": 40.0},
        )
        for i, t in enumerate(readings_at)
    )
    first_start = timing[0].cpu_start_s
    anchor = TimestampAnchor(
        gpu_ticks=ticks(first_start - 1e-3),
        cpu_time_after_s=first_start - 1e-3 + 10e-6,
        round_trip_s=20e-6,
    )
    return RunRecord(
        run_index=run_index,
        kernel_name="synthetic",
        readings=readings,
        executions=timing,
        anchor=anchor,
        logger_period_s=1e-3,
        counter_frequency_hz=COUNTER_HZ,
        pre_delay_s=0.0,
        metadata={"logger_start_cpu_s": first_start - 3e-3},
    )


def assert_identical_lois(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.run_index == b.run_index
        assert a.execution_index == b.execution_index
        assert a.window_end_cpu_s == b.window_end_cpu_s
        assert a.toi_s == b.toi_s
        assert a.toi_fraction == b.toi_fraction
        assert a.reading is b.reading


class TestExtractionEquivalence:
    def test_synthetic_run_synchronized(self):
        run = synthetic_run(
            readings_at=(1.99990, 2.00003, 2.00017, 2.00032, 2.00055, 2.00081),
            executions_spec=[(2.0, 2.0002), (2.00025, 2.00045), (2.0005, 2.0007)],
        )
        sync = synchronizer_for_run(run)
        assert_identical_lois(
            extract_lois(run, sync), extract_lois_reference(run, sync)
        )

    def test_synthetic_run_with_execution_filter(self):
        run = synthetic_run(
            readings_at=(2.00003, 2.00032, 2.00055),
            executions_spec=[(2.0, 2.0002), (2.00025, 2.00045), (2.0005, 2.0007)],
        )
        sync = synchronizer_for_run(run)
        assert_identical_lois(
            extract_lois(run, sync, execution_indices=[1, 2]),
            extract_lois_reference(run, sync, execution_indices=[1, 2]),
        )

    def test_synthetic_run_unsynchronized(self):
        run = synthetic_run(
            readings_at=(2.0001, 2.0003, 2.0006),
            executions_spec=[(2.0, 2.001), (2.0015, 2.0025), (2.003, 2.004)],
        )
        start = float(run.metadata["logger_start_cpu_s"])
        assert_identical_lois(
            extract_lois_unsynchronized(run, start),
            extract_lois_unsynchronized_reference(run, start),
        )

    def test_empty_readings(self):
        run = synthetic_run(readings_at=(), executions_spec=[(2.0, 2.0002)])
        sync = synchronizer_for_run(run)
        assert extract_lois(run, sync) == []
        assert extract_lois_unsynchronized(run, 1.0) == []

    def test_simulated_records(self, backend):
        kernel = cb_gemm(2048)
        for i in range(6):
            run = backend.run(kernel, executions=25, pre_delay_s=i * 2.3e-4, run_index=i)
            sync = synchronizer_for_run(run)
            assert_identical_lois(
                extract_lois(run, sync), extract_lois_reference(run, sync)
            )
            start = float(run.metadata["logger_start_cpu_s"])
            assert_identical_lois(
                extract_lois_unsynchronized(run, start),
                extract_lois_unsynchronized_reference(run, start),
            )


class TestBoundaryMatching:
    def test_shared_boundary_attributed_to_earlier_execution(self):
        # Back-to-back executions: a time exactly on the shared boundary is
        # contained by both; the scalar first-match picks the earlier one.
        run = synthetic_run(
            readings_at=(),
            executions_spec=[(2.0, 2.0002), (2.0002, 2.0004)],
            gapless=True,
        )
        boundary = 2.0002
        scalar = match_execution(run.executions, boundary)
        positions = match_execution_positions(run, np.asarray([boundary]))
        assert scalar is run.executions[positions[0]]
        assert positions[0] == 0

    def test_exact_start_and_end_included(self):
        run = synthetic_run(readings_at=(), executions_spec=[(2.0, 2.0002)])
        positions = match_execution_positions(
            run, np.asarray([2.0, 2.0002, 1.9999, 2.00021])
        )
        assert positions.tolist() == [0, 0, -1, -1]

    def test_idle_times_marked_minus_one(self):
        run = synthetic_run(
            readings_at=(),
            executions_spec=[(2.0, 2.0002), (2.0005, 2.0007)],
        )
        positions = match_execution_positions(run, np.asarray([2.0003, 2.00045]))
        assert positions.tolist() == [-1, -1]

    def test_matches_scalar_on_dense_grid(self):
        run = synthetic_run(
            readings_at=(),
            executions_spec=[(2.0, 2.0002), (2.0002, 2.00045), (2.0005, 2.0007)],
        )
        grid = np.linspace(1.9995, 2.00085, 400)
        positions = match_execution_positions(run, grid)
        for t, position in zip(grid, positions):
            scalar = match_execution(run.executions, float(t))
            if scalar is None:
                assert position == -1
            else:
                assert run.executions[position] is scalar


class TestBatchExtraction:
    def test_batch_matches_per_run_on_sequential_runs(self):
        from repro.core.timesync import extract_lois_batch

        runs = [
            synthetic_run(
                readings_at=(base + 0.00003, base + 0.00017, base + 0.0005),
                executions_spec=[(base, base + 0.0002), (base + 0.00025, base + 0.00045)],
                run_index=i,
            )
            for i, base in enumerate((2.0, 3.0, 4.0))
        ]
        batch = extract_lois_batch(runs)
        assert batch is not None
        for run, (lois, (times, positions)) in zip(runs, batch):
            sync = synchronizer_for_run(run)
            assert_identical_lois(lois, extract_lois(run, sync))
            assert times.shape[0] == len(run.readings)
            assert positions.shape[0] == len(run.readings)

    def test_overlapping_run_spans_rejected(self):
        # Run 0's execution span covers run 1's entirely; concatenated starts
        # and ends are still sorted, but batched matching cannot reproduce
        # per-run semantics, so the batch extractor must decline.
        from repro.core.timesync import extract_lois_batch

        overlapping = [
            synthetic_run(readings_at=(2.007,), executions_spec=[(2.0, 2.010)], run_index=0),
            synthetic_run(readings_at=(), executions_spec=[(2.002, 2.0105)], run_index=1),
            synthetic_run(readings_at=(), executions_spec=[(2.005, 2.012)], run_index=2),
        ]
        assert extract_lois_batch(overlapping) is None

    def test_stitcher_falls_back_for_overlapping_runs(self):
        from repro.core.stitching import ProfileStitcher

        overlapping = [
            synthetic_run(readings_at=(2.007,), executions_spec=[(2.0, 2.010)], run_index=0),
            synthetic_run(readings_at=(), executions_spec=[(2.002, 2.0105)], run_index=1),
        ]
        series = ProfileStitcher().collect(overlapping)
        sync = synchronizer_for_run(overlapping[0])
        assert_identical_lois(
            list(series.lois_by_run[0]), extract_lois_reference(overlapping[0], sync)
        )


class TestProfilerEquivalence:
    @pytest.fixture(scope="class")
    def results(self):
        def run_one(vectorized):
            backend = SimulatedDeviceBackend(spec=mi300x_spec(), seed=31)
            profiler = FinGraVProfiler(
                backend,
                ProfilerConfig(seed=311, max_additional_runs=80, vectorized=vectorized),
            )
            return profiler.profile(cb_gemm(2048), runs=12)

        return run_one(True), run_one(False)

    @pytest.mark.parametrize("attribute", ["ssp_profile", "sse_profile", "run_profile"])
    def test_profiles_bit_identical(self, results, attribute):
        vectorized, legacy = results
        pv, pl = getattr(vectorized, attribute), getattr(legacy, attribute)
        assert len(pv) == len(pl)
        assert pv.execution_time_s == pl.execution_time_s
        assert np.array_equal(pv.times(), pl.times())
        assert pv.components == pl.components
        for component in pv.components:
            assert np.array_equal(pv.series(component), pl.series(component))
        assert pv.run_indices() == pl.run_indices()

    def test_same_runs_and_golden_selection(self, results):
        vectorized, legacy = results
        assert vectorized.num_runs == legacy.num_runs
        assert vectorized.golden_run_indices == legacy.golden_run_indices
        assert vectorized.ssp_loi_count == legacy.ssp_loi_count


class TestConfigOverrides:
    def test_zero_adjacent_margin_override_not_ignored(self, backend):
        # A tiny but explicit binning margin must not fall back to guidance.
        profiler = FinGraVProfiler(
            backend,
            ProfilerConfig(
                seed=3,
                binning_margin=1e-9,
                max_additional_runs=0,
                refine_ssp_with_power_search=False,
            ),
        )
        result = profiler.profile(cb_gemm(4096), runs=8)
        assert result.binning is not None
        assert result.binning.margin == 1e-9
