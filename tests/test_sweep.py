"""Tests for the parallel experiment sweep engine."""

from __future__ import annotations

import os
import pickle
import threading
import time

import numpy as np
import pytest

import repro.experiments.sweep as sweep_module
from repro.experiments.sweep import (
    KernelSpec,
    ProfileJob,
    SweepJobError,
    SweepRunner,
    execute_job,
    job_key,
    kernel_spec,
    run_sweep,
)


def small_jobs() -> list[ProfileJob]:
    """Two genuinely small profile jobs (shared by the determinism tests)."""
    return [
        ProfileJob(
            job_id="test/CB-2K-GEMM",
            kernel=kernel_spec("cb_gemm", 2048),
            runs=10,
            backend_seed=51,
            profiler_seed=151,
            max_additional_runs=40,
        ),
        ProfileJob(
            job_id="test/CB-4K-GEMM",
            kernel=kernel_spec("cb_gemm", 4096),
            runs=10,
            backend_seed=52,
            profiler_seed=152,
            max_additional_runs=40,
        ),
    ]


def assert_result_maps_identical(left, right) -> None:
    assert set(left) == set(right)
    for job_id in left:
        a, b = left[job_id], right[job_id]
        for attribute in ("ssp_profile", "sse_profile", "run_profile"):
            pa, pb = getattr(a, attribute), getattr(b, attribute)
            assert len(pa) == len(pb)
            assert np.array_equal(pa.times(), pb.times())
            assert pa.components == pb.components
            for component in pa.components:
                assert np.array_equal(pa.series(component), pb.series(component))
        assert a.num_runs == b.num_runs
        assert a.golden_run_indices == b.golden_run_indices


class TestKernelSpec:
    def test_builds_registered_kernels(self):
        assert kernel_spec("cb_gemm", 2048).build().name == "CB-2K-GEMM"
        assert kernel_spec("mb_gemv", 8192).build().name == "MB-8K-GEMV"
        assert (
            kernel_spec("square_gemm", 6144, name="CB-6K-GEMM").build().name
            == "CB-6K-GEMM"
        )
        assert kernel_spec("collective", "AG-64KB").build().name == "AG-64KB"

    def test_unknown_builder_rejected(self):
        with pytest.raises(KeyError):
            KernelSpec(key="warp_drive").build()


class TestJobKey:
    def test_content_keyed_not_id_keyed(self):
        job = small_jobs()[0]
        renamed = ProfileJob(**{**job.__dict__, "job_id": "other/name"})
        assert job_key(job) == job_key(renamed)

    def test_any_config_field_changes_the_key(self):
        job = small_jobs()[0]
        for field, value in (
            ("backend_seed", 99), ("profiler_seed", 99), ("runs", 11),
            ("sampler", "instantaneous"), ("synchronize", False),
        ):
            changed = ProfileJob(**{**job.__dict__, field: value})
            assert job_key(job) != job_key(changed), field


class TestSweepRunner:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return SweepRunner(workers=1).run(small_jobs())

    def test_serial_matches_direct_execution(self, serial_results):
        direct = {job.job_id: execute_job(job) for job in small_jobs()}
        assert_result_maps_identical(serial_results, direct)

    def test_parallel_matches_serial(self, serial_results):
        parallel = SweepRunner(workers=2).run(small_jobs())
        assert_result_maps_identical(serial_results, parallel)

    def test_duplicate_identical_jobs_deduplicated(self, serial_results):
        jobs = small_jobs() + small_jobs()
        results = SweepRunner(workers=1).run(jobs)
        assert set(results) == {job.job_id for job in small_jobs()}

    def test_conflicting_job_ids_rejected(self):
        first, second = small_jobs()
        clashing = ProfileJob(**{**second.__dict__, "job_id": first.job_id})
        with pytest.raises(ValueError):
            SweepRunner(workers=1).run([first, clashing])

    def test_cache_replays_results(self, tmp_path, serial_results):
        cache_dir = tmp_path / "profile-cache"
        warm = SweepRunner(workers=1, cache_dir=cache_dir)
        first = warm.run(small_jobs())
        assert warm.cache_hits == 0
        assert sorted(cache_dir.glob("*.pkl"))
        replay = SweepRunner(workers=1, cache_dir=cache_dir)
        second = replay.run(small_jobs())
        assert replay.cache_hits == len(small_jobs())
        assert_result_maps_identical(first, second)
        assert_result_maps_identical(second, serial_results)

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache_dir = tmp_path / "profile-cache"
        runner = SweepRunner(workers=1, cache_dir=cache_dir)
        runner.run(small_jobs()[:1])
        for entry in cache_dir.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        retry = SweepRunner(workers=1, cache_dir=cache_dir)
        results = retry.run(small_jobs()[:1])
        assert retry.cache_hits == 0
        assert set(results) == {small_jobs()[0].job_id}

    def test_cache_replay_through_spill_sidecar(self, tmp_path, serial_results):
        # With a threshold of 1 LOI every profile leaves the pickle for the
        # sidecar; the replayed results must still be bit-identical.
        cache_dir = tmp_path / "spill-cache"
        warm = SweepRunner(workers=1, cache_dir=cache_dir, spill_points=1)
        first = warm.run(small_jobs())
        assert sorted(cache_dir.glob("*.npz"))  # sidecars written
        replay = SweepRunner(workers=1, cache_dir=cache_dir, spill_points=1)
        second = replay.run(small_jobs())
        assert replay.cache_hits == len(small_jobs())
        assert_result_maps_identical(first, second)
        assert_result_maps_identical(second, serial_results)


def adaptive_jobs() -> list[ProfileJob]:
    """Jobs with convergence-driven early stopping enabled."""
    return [
        ProfileJob(
            job_id="test/CB-8K-GEMM-adaptive",
            kernel=kernel_spec("cb_gemm", 8192),
            runs=40,
            backend_seed=12,
            profiler_seed=212,
            max_additional_runs=300,
            adaptive=True,
        ),
        ProfileJob(
            job_id="test/CB-2K-GEMM-adaptive",
            kernel=kernel_spec("cb_gemm", 2048),
            runs=10,
            backend_seed=51,
            profiler_seed=151,
            max_additional_runs=40,
            adaptive=True,
        ),
    ]


class TestAdaptiveSweepDeterminism:
    """The adaptive stopping rule must not break sweep reproducibility."""

    @pytest.fixture(scope="class")
    def serial_adaptive(self):
        return SweepRunner(workers=1).run(adaptive_jobs())

    def test_adaptive_flag_changes_the_cache_key(self):
        job = adaptive_jobs()[0]
        fixed = ProfileJob(**{**job.__dict__, "adaptive": False})
        assert job_key(job) != job_key(fixed)

    def test_parallel_matches_serial(self, serial_adaptive):
        parallel = SweepRunner(workers=2).run(adaptive_jobs())
        assert_result_maps_identical(serial_adaptive, parallel)
        for job_id in serial_adaptive:
            assert (
                sweep_module._collection_audit(serial_adaptive[job_id])
                == sweep_module._collection_audit(parallel[job_id])
            )

    def test_stopping_decisions_recorded(self, serial_adaptive):
        audits = {
            job_id: sweep_module._collection_audit(result)
            for job_id, result in serial_adaptive.items()
        }
        assert all(audit is not None for audit in audits.values())
        assert all(audit["adaptive"] for audit in audits.values())
        # The long kernel converges well inside its planned 40 runs.
        converged = audits["test/CB-8K-GEMM-adaptive"]
        assert converged["stop_reason"] == "converged"
        assert converged["runs_saved"] > 0

    def test_adaptive_results_differ_from_fixed(self, serial_adaptive):
        # Early stopping genuinely changes collection for the converging job.
        fixed_job = ProfileJob(
            **{**adaptive_jobs()[0].__dict__, "adaptive": False}
        )
        fixed = execute_job(fixed_job)
        adaptive = serial_adaptive[fixed_job.job_id]
        assert adaptive.num_runs < fixed.num_runs


def failing_job(job_id: str = "test/failing") -> ProfileJob:
    """A job whose kernel build raises inside execute_job (any process)."""
    return ProfileJob(
        job_id=job_id,
        kernel=KernelSpec(key="no-such-kernel"),
        runs=4,
        backend_seed=1,
        profiler_seed=2,
    )


class TestPartialFailureRecovery:
    def test_surviving_jobs_returned_and_failure_named(self, tmp_path):
        cache_dir = tmp_path / "cache"
        runner = SweepRunner(workers=1, cache_dir=cache_dir)
        good = small_jobs()[0]
        with pytest.raises(SweepJobError) as excinfo:
            runner.run([good, failing_job()])
        error = excinfo.value
        assert "test/failing" in str(error)
        assert set(error.failures) == {"test/failing"}
        failure = error.failures["test/failing"]
        assert failure.exc_type == "KeyError"
        assert not failure.retryable  # a bad kernel spec is not transient
        assert "Traceback" in failure.traceback  # debuggable across processes
        assert "KeyError" in str(failure)
        # The good job finished, was returned, and was cached for replay.
        assert set(error.completed) == {good.job_id}
        replay = SweepRunner(workers=1, cache_dir=cache_dir)
        results = replay.run([good])
        assert replay.cache_hits == 1
        assert_result_maps_identical(results, {good.job_id: error.completed[good.job_id]})

    def test_parallel_pool_survives_one_failure(self):
        jobs = small_jobs() + [failing_job()]
        with pytest.raises(SweepJobError) as excinfo:
            SweepRunner(workers=2).run(jobs)
        assert set(excinfo.value.completed) == {job.job_id for job in small_jobs()}

    def test_multiple_failures_all_reported(self):
        with pytest.raises(SweepJobError) as excinfo:
            SweepRunner(workers=1).run([failing_job("test/f1"), failing_job("test/f2")])
        assert set(excinfo.value.failures) == {"test/f1", "test/f2"}

    def test_run_sweep_salvages_assembled_experiments(self, monkeypatch):
        """Experiments whose jobs all completed are assembled onto the error."""
        from repro.experiments import fig6, fig8

        good = ProfileJob(
            job_id="fig6/CB-8K-GEMM",
            kernel=kernel_spec("cb_gemm", 4096),
            runs=10,
            backend_seed=81,
            profiler_seed=181,
            max_additional_runs=40,
        )
        monkeypatch.setattr(fig6, "fig6_jobs", lambda scale=None, **kw: [good])
        monkeypatch.setattr(
            fig8, "fig8_jobs",
            lambda scale=None, **kw: [failing_job("fig8/CB-2K-GEMM")],
        )
        with pytest.raises(SweepJobError) as excinfo:
            run_sweep(["fig6", "fig8"], runner=SweepRunner(workers=1))
        error = excinfo.value
        assert set(error.failures) == {"fig8/CB-2K-GEMM"}
        assert set(error.assembled) == {"fig6"}  # fig6 survived and assembled
        assert error.assembled["fig6"].summary()["kernel"] == "CB-4K-GEMM"


class TestCacheStagingHardening:
    def test_staging_names_unique_per_write(self, tmp_path, monkeypatch):
        """Two writers (even same-process) never share a staging path."""
        runner = SweepRunner(workers=1, cache_dir=tmp_path)
        job = small_jobs()[0]
        staged: list[str] = []
        real_write = sweep_module._write_entry

        def recording_write(result, handle, spill_points):
            staged.append(handle.name)
            return real_write(result, handle, spill_points)

        monkeypatch.setattr(sweep_module, "_write_entry", recording_write)
        runner._cache_store(job, "payload-1")
        runner._cache_store(job, "payload-2")
        assert len(staged) == 2 and staged[0] != staged[1]
        assert all(f".{os.getpid()}-" in name for name in staged)
        # Both writes landed atomically on the same final entry.
        assert runner._cache_load(job) == "payload-2"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_concurrent_writers_leave_valid_entry_and_no_strays(self, tmp_path):
        job = small_jobs()[0]
        runners = [SweepRunner(workers=1, cache_dir=tmp_path) for _ in range(2)]

        def hammer(runner, payload):
            for _ in range(50):
                runner._cache_store(job, payload)

        threads = [
            threading.Thread(target=hammer, args=(runner, f"payload-{i}"))
            for i, runner in enumerate(runners)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Whatever won, the entry must unpickle cleanly (no interleaved
        # staging writes) and no staging files may remain.
        assert runners[0]._cache_load(job) in {"payload-0", "payload-1"}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stale_staging_strays_cleaned(self, tmp_path):
        job = small_jobs()[0]
        stale = tmp_path / f"{job_key(job)}.pkl.1234-0.tmp"
        fresh = tmp_path / f"{job_key(job)}.pkl.5678-0.tmp"
        stale.write_bytes(b"dead writer")
        fresh.write_bytes(b"live writer")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        runner = SweepRunner(workers=1, cache_dir=tmp_path)
        runner.run([small_jobs()[0]])
        assert not stale.exists()  # orphan removed
        assert fresh.exists()  # live staging untouched


class TestInterleavedJobs:
    def test_interleaved_job_returns_profile(self):
        job = ProfileJob(
            job_id="test/interleaved",
            kernel=kernel_spec("cb_gemm", 2048),
            runs=8,
            backend_seed=61,
            profiler_seed=161,
            preceding=((kernel_spec("cb_gemm", 4096), 4),),
            interleave_seed=261,
            max_runs=120,
        )
        profile = execute_job(job)
        assert not profile.is_empty
        assert profile.kernel_name == "CB-2K-GEMM"
        # Deterministic re-execution.
        again = execute_job(job)
        assert np.array_equal(profile.times(), again.times())
        assert np.array_equal(profile.series(), again.series())


class TestRunSweep:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(["fig99"])


class TestFig9ScenarioTable:
    def test_job_specs_match_workloads_scenarios(self):
        """fig9's picklable scenario table must mirror the canonical one."""
        from repro.experiments.fig9 import _SCENARIOS
        from repro.kernels.workloads import interleaving_scenarios

        canonical = interleaving_scenarios()
        assert len(_SCENARIOS) == len(canonical)
        for (label, spec, preceding), scenario in zip(_SCENARIOS, canonical):
            assert label == scenario.label
            assert spec.build().name == scenario.kernel_of_interest.name
            assert [(p.build().name, count) for p, count in preceding] == [
                (kernel.name, count) for kernel, count in scenario.preceding
            ]
