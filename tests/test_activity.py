"""Unit tests for kernel activity descriptors."""

import pytest

from repro.gpu.activity import (
    DEFAULT_PHASES,
    KernelActivityDescriptor,
    PhaseSpec,
    VariationSpec,
    XCDOccupancyMode,
    flat_profile_phases,
    uniform_phases,
)


def make_descriptor(**overrides):
    params = dict(
        name="test-kernel",
        base_duration_s=100e-6,
        compute_utilization=0.5,
        llc_utilization=0.1,
        hbm_utilization=0.05,
    )
    params.update(overrides)
    return KernelActivityDescriptor(**params)


class TestPhaseSpec:
    def test_default_phases_sum_to_one(self):
        assert sum(p.duration_fraction for p in DEFAULT_PHASES) == pytest.approx(1.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            PhaseSpec(duration_fraction=0.0).validate()

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            PhaseSpec(duration_fraction=0.5, xcd_scale=-1.0).validate()

    def test_uniform_phases(self):
        phases = uniform_phases(4)
        assert len(phases) == 4
        assert sum(p.duration_fraction for p in phases) == pytest.approx(1.0)

    def test_uniform_phases_rejects_zero(self):
        with pytest.raises(ValueError):
            uniform_phases(0)

    def test_flat_profile_single_phase(self):
        assert len(flat_profile_phases()) == 1


class TestVariationSpec:
    def test_defaults_validate(self):
        VariationSpec().validate()

    def test_negative_cv_rejected(self):
        with pytest.raises(ValueError):
            VariationSpec(run_cv=-0.1).validate()

    def test_outlier_probability_bounds(self):
        with pytest.raises(ValueError):
            VariationSpec(outlier_probability=1.5).validate()
        VariationSpec(outlier_probability=1.0).validate()

    def test_outlier_must_slow_down(self):
        with pytest.raises(ValueError):
            VariationSpec(outlier_scale=0.9).validate()


class TestKernelActivityDescriptor:
    def test_valid_descriptor_constructs(self):
        descriptor = make_descriptor()
        assert descriptor.name == "test-kernel"

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            make_descriptor(compute_utilization=1.5)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            make_descriptor(base_duration_s=0.0)

    def test_rejects_cold_speedup(self):
        with pytest.raises(ValueError):
            make_descriptor(cold_duration_multiplier=0.5)

    def test_rejects_unnormalised_phases(self):
        phases = (PhaseSpec(duration_fraction=0.5), PhaseSpec(duration_fraction=0.3))
        with pytest.raises(ValueError):
            make_descriptor(phases=phases)

    def test_duration_scales_with_frequency_for_compute_bound(self):
        descriptor = make_descriptor(frequency_sensitivity=1.0)
        slow = descriptor.duration_at(1.0, 2.0)
        fast = descriptor.duration_at(2.0, 2.0)
        assert slow == pytest.approx(2.0 * fast)

    def test_duration_insensitive_for_memory_bound(self):
        descriptor = make_descriptor(frequency_sensitivity=0.0)
        assert descriptor.duration_at(1.0, 2.0) == pytest.approx(descriptor.duration_at(2.0, 2.0))

    def test_cold_duration_multiplier_applied(self):
        descriptor = make_descriptor(cold_duration_multiplier=1.5)
        warm = descriptor.duration_at(2.0, 2.0, cold=False)
        cold = descriptor.duration_at(2.0, 2.0, cold=True)
        assert cold == pytest.approx(1.5 * warm)

    def test_phase_lookup_spans_whole_execution(self):
        descriptor = make_descriptor()
        assert descriptor.phase_at(0.0) is descriptor.phases[0]
        assert descriptor.phase_at(0.5) is descriptor.phases[1]
        assert descriptor.phase_at(1.0) is descriptor.phases[-1]
        assert descriptor.phase_at(1.7) is descriptor.phases[-1]

    def test_cold_hbm_defaults_to_warm(self):
        descriptor = make_descriptor(hbm_utilization=0.07, hbm_utilization_cold=None)
        assert descriptor.effective_hbm_utilization_cold == pytest.approx(0.07)

    def test_scaled_changes_duration_only(self):
        descriptor = make_descriptor()
        scaled = descriptor.scaled(2.0)
        assert scaled.base_duration_s == pytest.approx(2 * descriptor.base_duration_s)
        assert scaled.compute_utilization == descriptor.compute_utilization

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_descriptor().scaled(0.0)

    def test_with_variation_replaces_model(self):
        new_variation = VariationSpec(run_cv=0.1)
        descriptor = make_descriptor().with_variation(new_variation)
        assert descriptor.variation.run_cv == pytest.approx(0.1)

    def test_occupancy_modes_enumerated(self):
        assert {m.value for m in XCDOccupancyMode} == {"matrix", "vector", "stalled", "dma"}
