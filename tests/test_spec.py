"""Unit tests for the GPU / platform hardware specification."""

import pytest

from repro.gpu.spec import (
    DVFSSpec,
    GPUSpec,
    PlatformSpec,
    PowerBudget,
    mi300x_platform_spec,
    mi300x_spec,
)


class TestGPUSpec:
    def test_default_spec_validates(self):
        spec = mi300x_spec()
        spec.validate()

    def test_chiplet_counts_match_mi300x(self):
        spec = mi300x_spec()
        assert spec.num_xcds == 8
        assert spec.num_iods == 4
        assert spec.num_hbm_stacks == 8
        assert spec.total_compute_units == 304

    def test_llc_capacity_is_256mb(self):
        spec = mi300x_spec()
        assert spec.llc_capacity_bytes == 256 * 1024 * 1024

    def test_hbm_capacity_is_192gb(self):
        spec = mi300x_spec()
        assert spec.hbm_capacity_bytes == 192 * 1024 ** 3

    def test_peak_hbm_bandwidth(self):
        spec = mi300x_spec()
        assert spec.peak_hbm_bandwidth == pytest.approx(5.3e12)

    def test_machine_op_to_byte_is_high(self):
        spec = mi300x_spec()
        assert spec.machine_op_to_byte > 100

    def test_aggregate_peaks_scale_with_chiplets(self):
        spec = mi300x_spec()
        assert spec.peak_matrix_flops == pytest.approx(spec.num_xcds * spec.xcd.peak_matrix_flops)
        assert spec.peak_llc_bandwidth == pytest.approx(spec.num_iods * spec.iod.peak_llc_bandwidth)

    def test_invalid_xcd_iod_division_rejected(self):
        spec = GPUSpec(num_xcds=6, num_iods=4)
        with pytest.raises(ValueError):
            spec.validate()

    def test_zero_components_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(num_xcds=0).validate()

    def test_board_limit_must_exceed_idle(self):
        bad = GPUSpec(power=PowerBudget(board_limit_w=50.0))
        with pytest.raises(ValueError):
            bad.validate()

    def test_sustained_cannot_exceed_boost(self):
        bad = GPUSpec(dvfs=DVFSSpec(sustained_frequency_ghz=3.0))
        with pytest.raises(ValueError):
            bad.validate()


class TestPowerBudget:
    def test_idle_total_is_sum_of_components(self):
        budget = PowerBudget()
        assert budget.idle_total_w == pytest.approx(
            budget.xcd_idle_w + budget.iod_idle_w + budget.hbm_idle_w
        )

    def test_peak_exceeds_board_limit(self):
        # The GPU must be *able* to exceed its power limit, otherwise the
        # power-cap firmware would never engage (paper Section V-C1).
        budget = PowerBudget()
        assert budget.peak_total_w > budget.board_limit_w

    def test_activity_floor_is_large(self):
        # The non-proportional XCD floor is what makes compute-light and
        # compute-heavy GEMMs draw similar XCD power (takeaway #4).
        budget = PowerBudget()
        assert budget.xcd_activity_floor >= 0.4
        assert budget.xcd_stalled_floor < budget.xcd_activity_floor


class TestPlatformSpec:
    def test_default_platform_validates(self):
        mi300x_platform_spec().validate()

    def test_eight_gpus_fully_connected(self):
        platform = mi300x_platform_spec()
        assert platform.num_gpus == 8
        assert platform.links_per_gpu == 7

    def test_aggregate_fabric_bandwidth(self):
        platform = mi300x_platform_spec()
        assert platform.aggregate_fabric_bandwidth == pytest.approx(7 * 64e9)

    def test_single_gpu_platform_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(num_gpus=1).validate()

    def test_custom_gpu_count(self):
        platform = mi300x_platform_spec(num_gpus=4)
        assert platform.links_per_gpu == 3
