"""Equivalence tests: columnar profiles vs the retained object-based path.

The columnar rebuild's contract is that nothing about the numbers changes:
statistics, smoothing, restriction, subsampling and export rows must be
bit-identical whether a profile is built from LOI columns
(``profile_from_lois``), from frozen points (``profile_from_lois_reference``),
or assembled by the columnar vs object-based stitcher.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binning import ExecutionTimeBinner
from repro.core.profile import (
    FineGrainProfile,
    ProfileKind,
    ProfilePoint,
    profile_from_lois,
    profile_from_lois_reference,
)
from repro.core.profiler import FinGraVProfiler, ProfilerConfig
from repro.core.records import LogOfInterest, PowerReading
from repro.core.stitching import ProfileStitcher
from repro.gpu.backend import SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm


def synthetic_lois(n: int = 400, seed: int = 3, components=True) -> list[LogOfInterest]:
    rng = np.random.default_rng(seed)
    lois = []
    for i in range(n):
        comps = {"xcd": float(500 + rng.standard_normal()),
                 "iod": 120.0, "hbm": 80.0} if components else {}
        lois.append(
            LogOfInterest(
                run_index=int(i % 37),
                execution_index=int(30 + (i % 3)),
                reading=PowerReading(
                    gpu_timestamp_ticks=i,
                    window_s=1e-3,
                    total_w=float(700 + rng.standard_normal() * 10),
                    components=comps,
                ),
                window_end_cpu_s=1.0 + i * 1e-3,
                toi_s=float(rng.uniform(0, 1e-4)),
                toi_fraction=0.5,
            )
        )
    return lois


def assert_profiles_identical(a: FineGrainProfile, b: FineGrainProfile) -> None:
    assert len(a) == len(b)
    assert a.kind == b.kind
    assert a.execution_time_s == b.execution_time_s
    assert np.array_equal(a.times(), b.times())
    assert a.components == b.components
    for component in a.components:
        assert np.array_equal(a.series(component), b.series(component))
    assert a.run_indices() == b.run_indices()
    assert a.to_rows() == b.to_rows()


class TestColumnarVsObjectConstruction:
    @pytest.fixture(scope="class")
    def pair(self):
        lois = synthetic_lois()
        columnar = profile_from_lois("k", ProfileKind.SSP, lois, 1e-4)
        objects = profile_from_lois_reference("k", ProfileKind.SSP, lois, 1e-4)
        return columnar, objects

    def test_arrays_and_rows_bit_identical(self, pair):
        assert_profiles_identical(*pair)

    def test_statistics_bit_identical(self, pair):
        columnar, objects = pair
        for component in columnar.components:
            assert columnar.mean_power_w(component) == objects.mean_power_w(component)
            assert columnar.median_power_w(component) == objects.median_power_w(component)
            assert columnar.max_power_w(component) == objects.max_power_w(component)
            assert columnar.min_power_w(component) == objects.min_power_w(component)
            assert columnar.power_std_w(component) == objects.power_std_w(component)
            assert columnar.energy_j(component) == objects.energy_j(component)

    def test_smoothing_bit_identical(self, pair):
        columnar, objects = pair
        for degree in (1, 4):
            grid_c, fit_c = columnar.smoothed(degree=degree)
            grid_o, fit_o = objects.smoothed(degree=degree)
            assert np.array_equal(grid_c, grid_o)
            assert np.array_equal(fit_c, fit_o)
        centers_c, means_c = columnar.binned_mean(bins=16)
        centers_o, means_o = objects.binned_mean(bins=16)
        assert np.array_equal(centers_c, centers_o)
        assert np.array_equal(means_c, means_o)

    def test_restriction_and_subsampling_bit_identical(self, pair):
        columnar, objects = pair
        assert_profiles_identical(
            columnar.restricted_to_runs([1, 5, 9]), objects.restricted_to_runs([1, 5, 9])
        )
        assert_profiles_identical(columnar.subsampled(37, seed=5), objects.subsampled(37, seed=5))

    def test_lazy_points_match_object_path(self, pair):
        columnar, objects = pair
        assert columnar.points == objects.points

    def test_empty_profiles_agree(self):
        import math
        import warnings

        columnar = profile_from_lois("k", ProfileKind.SSP, [], 1e-4)
        objects = profile_from_lois_reference("k", ProfileKind.SSP, [], 1e-4)
        assert columnar.is_empty and objects.is_empty
        assert columnar.components == objects.components == ()
        assert np.array_equal(columnar.series("total"), objects.series("total"))
        # The documented empty-profile contract: clean NaN, no warnings,
        # identical on the columnar and object paths.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert math.isnan(columnar.mean_power_w())
            assert math.isnan(objects.mean_power_w())


class TestStitcherEquivalence:
    @pytest.fixture(scope="class")
    def results(self):
        def run_one(columnar: bool):
            backend = SimulatedDeviceBackend(spec=mi300x_spec(), seed=41)
            profiler = FinGraVProfiler(
                backend,
                ProfilerConfig(seed=411, max_additional_runs=80, columnar=columnar),
            )
            return profiler.profile(cb_gemm(2048), runs=12)

        return run_one(True), run_one(False)

    @pytest.mark.parametrize("attribute", ["ssp_profile", "sse_profile", "run_profile"])
    def test_profiles_bit_identical(self, results, attribute):
        columnar, objects = results
        assert_profiles_identical(getattr(columnar, attribute), getattr(objects, attribute))

    def test_same_runs_and_golden_selection(self, results):
        columnar, objects = results
        assert columnar.num_runs == objects.num_runs
        assert columnar.golden_run_indices == objects.golden_run_indices


class TestComponentsUnionFix:
    def test_component_missing_from_first_point_still_reported(self):
        points = (
            ProfilePoint(time_s=1e-6, powers_w={"total": 100.0}),
            ProfilePoint(time_s=2e-6, powers_w={"total": 110.0, "xcd": 70.0}),
            ProfilePoint(time_s=3e-6, powers_w={"total": 120.0, "xcd": 75.0}),
        )
        profile = FineGrainProfile("k", ProfileKind.SSP, points, 1e-4)
        assert profile.components == ("total", "xcd")
        # Stats over the points that carry the component.
        assert profile.mean_power_w("xcd") == pytest.approx(72.5)
        summary = profile.component_summary()
        assert set(summary) == {"total", "xcd"}
        # The aligned series carries NaN holes plus an explicit mask.
        series = profile.series("xcd")
        assert np.isnan(series[0]) and series[1] == 70.0
        mask = profile.component_mask("xcd")
        assert mask is not None and mask.tolist() == [False, True, True]
        # Export rows only mention the component where present.
        rows = profile.to_rows()
        assert "xcd_w" not in rows[0] and rows[1]["xcd_w"] == 70.0

    def test_fully_present_component_has_no_mask(self):
        profile = profile_from_lois("k", ProfileKind.SSP, synthetic_lois(32), 1e-4)
        assert profile.component_mask("xcd") is None

    def test_unknown_component_still_raises(self):
        profile = profile_from_lois("k", ProfileKind.SSP, synthetic_lois(8), 1e-4)
        with pytest.raises(KeyError):
            profile.series("nope")


class TestBinnedMean:
    def test_matches_python_reference_loop(self):
        profile = profile_from_lois("k", ProfileKind.SSP, synthetic_lois(500, seed=9), 1e-4)
        bins = 24
        times, powers = profile.times(), profile.series("total")
        edges = np.linspace(float(times.min()), float(times.max()) + 1e-12, bins + 1)
        which = np.clip(np.digitize(times, edges) - 1, 0, bins - 1)
        expected_centers, expected_means = [], []
        for b in range(bins):
            mask = which == b
            if np.any(mask):
                expected_centers.append(0.5 * (edges[b] + edges[b + 1]))
                expected_means.append(float(np.mean(powers[mask])))
        centers, means = profile.binned_mean(bins=bins)
        assert np.allclose(centers, expected_centers)
        assert np.allclose(means, expected_means)


class TestBinAroundEmptyBin:
    def test_no_hits_reports_explicit_empty_bin(self):
        binner = ExecutionTimeBinner(0.01)
        result = binner.bin_around([10e-6, 11e-6, 12e-6], target_s=50e-6)
        assert result.is_empty
        assert result.num_selected == 0
        assert np.isnan(result.bin_low_s) and np.isnan(result.bin_high_s)

    def test_hits_report_real_bounds(self):
        binner = ExecutionTimeBinner(0.05)
        result = binner.bin_around([10e-6, 10.2e-6, 20e-6], target_s=10e-6)
        assert not result.is_empty
        assert result.selected_indices == (0, 1)
        assert result.bin_low_s == 10e-6 and result.bin_high_s == 10.2e-6
