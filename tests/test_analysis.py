"""Unit/integration tests for the analysis layer (comparative, errors, trends,
proportionality, insights, interleaving)."""

import numpy as np
import pytest

from repro.analysis.comparative import (
    ComponentComparison,
    KernelComponentSummary,
    summary_from_result,
)
from repro.analysis.errors import ErrorRecord, ErrorSummary, summarize_errors
from repro.analysis.insights import (
    takeaway_1_profile_differentiation,
    takeaway_2_power_scales_with_work,
    takeaway_3_xcd_dominates_compute,
    takeaway_4_power_proportionality,
    takeaway_5_interleaving,
)
from repro.analysis.interleaving import InterleavedMeasurement, InterleavingStudy
from repro.analysis.proportionality import (
    ProportionalityAssessment,
    ProportionalityRecord,
    assess_proportionality,
)
from repro.analysis.trends import fit_trend, linear_trend, profile_spread, trend_agreement
from repro.core.profile import FineGrainProfile, ProfileKind, ProfilePoint
from repro.kernels.workloads import cb_gemm, cb_gemms, mb_gemv


def summary(name, total, xcd, iod, hbm, exec_time=100e-6, error=None):
    return KernelComponentSummary(
        kernel_name=name,
        execution_time_s=exec_time,
        power_w={"total": total, "xcd": xcd, "iod": iod, "hbm": hbm},
        sse_vs_ssp_error=error,
    )


PAPER_LIKE_SUMMARIES = (
    summary("CB-8K-GEMM", 580, 500, 47, 31, exec_time=1.2e-3, error=0.2),
    summary("CB-4K-GEMM", 560, 490, 45, 29, exec_time=180e-6, error=0.3),
    summary("CB-2K-GEMM", 500, 440, 40, 29, exec_time=35e-6, error=0.7),
    summary("MB-8K-GEMV", 300, 200, 75, 27, exec_time=19e-6, error=0.5),
    summary("MB-4K-GEMV", 270, 195, 48, 27, exec_time=10e-6, error=0.5),
    summary("MB-2K-GEMV", 260, 190, 42, 27, exec_time=8e-6, error=0.5),
)


class TestComponentComparison:
    @pytest.fixture()
    def comparison(self):
        return ComponentComparison(summaries=PAPER_LIKE_SUMMARIES)

    def test_series_and_ranking(self, comparison):
        totals = comparison.series("total")
        assert totals["CB-8K-GEMM"] == 580
        assert comparison.ranking("total")[0] == "CB-8K-GEMM"
        assert comparison.ranking("iod")[0] == "MB-8K-GEMV"

    def test_normalized_series(self, comparison):
        normalized = comparison.normalized_series("total")
        assert normalized["CB-8K-GEMM"] == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in normalized.values())

    def test_dominant_component(self, comparison):
        assert comparison.dominant_component("CB-8K-GEMM") == "xcd"

    def test_relative_to(self, comparison):
        ref = comparison.summary_for("CB-8K-GEMM")
        rel = comparison.summary_for("MB-8K-GEMV").relative_to(ref)
        assert rel["total"] == pytest.approx(300 / 580)

    def test_missing_kernel_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.summary_for("nope")

    def test_to_rows(self, comparison):
        rows = comparison.to_rows()
        assert len(rows) == 6
        assert rows[0]["kernel"] == "CB-8K-GEMM"

    def test_summary_from_result(self, cb2k_result):
        s = summary_from_result(cb2k_result)
        assert s.kernel_name == "CB-2K-GEMM"
        assert s.component("total") > s.component("iod")
        assert s.sse_vs_ssp_error is not None


class TestErrorSummary:
    def test_error_shrinks_with_execution_time(self):
        records = (
            ErrorRecord("short", 30e-6, 1e-3, sse_power_w=150, ssp_power_w=500),
            ErrorRecord("long", 1.2e-3, 1e-3, sse_power_w=480, ssp_power_w=580),
        )
        errors = ErrorSummary(records)
        assert errors.max_error() == pytest.approx(0.7)
        assert errors.error_shrinks_with_execution_time()
        assert errors.record_for("short").window_fill_ratio == pytest.approx(0.03)

    def test_summarize_from_results(self, cb2k_result, cb8k_result):
        errors = summarize_errors([cb2k_result, cb8k_result], 1e-3)
        assert errors.error_shrinks_with_execution_time()
        rows = errors.to_rows()
        assert len(rows) == 2


class TestTrends:
    def _profile(self, times, powers):
        points = tuple(
            ProfilePoint(time_s=t, powers_w={"total": p}) for t, p in zip(times, powers)
        )
        return FineGrainProfile("k", ProfileKind.RUN, points, 1e-4)

    def test_fit_and_agreement(self):
        times = np.linspace(0, 1e-3, 200)
        powers = 100 + 3e5 * times
        full = self._profile(times, powers)
        subset = self._profile(times[::4], powers[::4])
        reference = fit_trend(full, degree=4)
        candidate = fit_trend(subset, degree=4)
        assert trend_agreement(reference, candidate) > 0.98

    def test_linear_trend_slope_sign(self):
        times = np.linspace(0, 1e-3, 50)
        rising = self._profile(times, 100 + 2e5 * times)
        trend = linear_trend(rising)
        assert trend.fitted_w[-1] > trend.fitted_w[0]

    def test_profile_spread_smaller_for_clean_data(self):
        rng = np.random.default_rng(0)
        times = np.linspace(0, 1e-3, 200)
        base = 100 + 3e5 * times
        clean = self._profile(times, base + rng.normal(0, 2, size=times.size))
        noisy = self._profile(times, base + rng.normal(0, 40, size=times.size))
        assert profile_spread(clean) < profile_spread(noisy)


class TestProportionality:
    def test_assessment_from_kernels(self, spec):
        kernels = cb_gemms()
        assessment = assess_proportionality(kernels, PAPER_LIKE_SUMMARIES[:3], spec)
        gap = assessment.xcd_proportionality_gap("CB-2K-GEMM", "CB-8K-GEMM")
        assert gap > 1.2  # compute-light kernel burns disproportionate XCD power
        assert len(assessment.to_rows()) == 3

    def test_iod_tracks_llc(self):
        records = tuple(
            ProportionalityRecord(f"k{i}", 0.5, 400.0, 40.0 + 10 * i, 0.1 * i, 500.0)
            for i in range(4)
        )
        assessment = ProportionalityAssessment(records)
        assert assessment.iod_tracks_llc_bandwidth() > 0.99

    def test_missing_kernel_raises(self):
        assessment = ProportionalityAssessment(
            (ProportionalityRecord("a", 0.5, 100, 10, 0.1, 200),)
        )
        with pytest.raises(KeyError):
            assessment.record_for("b")


def make_measurement(label, kernel, ratio):
    profile = FineGrainProfile(
        kernel, ProfileKind.CUSTOM,
        (ProfilePoint(time_s=0.0, powers_w={"total": 100.0 * ratio}),), 1e-4,
    )
    return InterleavedMeasurement(
        label=label, kernel_name=kernel, isolated_ssp_w=100.0,
        interleaved_w=100.0 * ratio, preceding_description=("x",), lois=5,
        interleaved_profile=profile,
    )


class TestInsights:
    def test_takeaway_1(self):
        errors = ErrorSummary((
            ErrorRecord("short", 30e-6, 1e-3, 150, 500),
            ErrorRecord("long", 1.2e-3, 1e-3, 480, 580),
        ))
        takeaway = takeaway_1_profile_differentiation(errors)
        assert takeaway.holds
        assert "80%" in takeaway.guidance

    def test_takeaways_2_3_4(self, spec):
        comparison = ComponentComparison(summaries=PAPER_LIKE_SUMMARIES)
        cb = ["CB-8K-GEMM", "CB-4K-GEMM", "CB-2K-GEMM"]
        mb = ["MB-8K-GEMV", "MB-4K-GEMV", "MB-2K-GEMV"]
        assert takeaway_2_power_scales_with_work(comparison, cb, mb).holds
        assert takeaway_3_xcd_dominates_compute(comparison, cb).holds
        assessment = assess_proportionality(cb_gemms(), PAPER_LIKE_SUMMARIES[:3], spec)
        assert takeaway_4_power_proportionality(assessment, "CB-2K-GEMM", "CB-8K-GEMM").holds

    def test_takeaway_5(self):
        measurements = [
            make_measurement("CB->8K", "CB-8K-GEMM", 1.03),
            make_measurement("MB->2K", "CB-2K-GEMM", 0.4),
            make_measurement("CB->2K", "CB-2K-GEMM", 1.2),
        ]
        takeaway = takeaway_5_interleaving(measurements, unaffected_kernel="CB-8K-GEMM")
        assert takeaway.holds

    def test_takeaway_5_fails_when_long_kernel_affected(self):
        measurements = [
            make_measurement("CB->8K", "CB-8K-GEMM", 1.4),
            make_measurement("MB->2K", "CB-2K-GEMM", 0.4),
        ]
        assert not takeaway_5_interleaving(measurements, "CB-8K-GEMM").holds


class TestInterleavedMeasurement:
    def test_ratio_and_direction(self):
        lower = make_measurement("MB->2K", "CB-2K-GEMM", 0.4)
        assert lower.ratio == pytest.approx(0.4)
        assert lower.affected and lower.direction() == "lower"
        unchanged = make_measurement("CB->8K", "CB-8K-GEMM", 1.02)
        assert not unchanged.affected and unchanged.direction() == "unchanged"

    def test_study_on_simulated_backend(self, backend, small_profiler):
        study = InterleavingStudy(backend, profiler=small_profiler, runs=25, seed=3)
        profile = study.interleaved_profile(
            cb_gemm(2048), preceding=[(mb_gemv(4096), 20)], min_lois=3
        )
        assert len(profile) >= 3
        # Measured power should sit near the preceding GEMV level, i.e. far
        # below the CB-2K boost-level power.
        assert profile.mean_power_w("total") < 420
