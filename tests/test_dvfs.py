"""Unit tests for the DVFS / power-cap firmware."""

import pytest

from repro.gpu.dvfs import FirmwareConfig, FirmwareState, PowerManagementFirmware
from repro.gpu.spec import DVFSSpec, PowerBudget


@pytest.fixture()
def firmware():
    return PowerManagementFirmware(DVFSSpec(), PowerBudget())


def step_for(firmware, seconds, power, resident, start=0.0, dt=250e-6):
    """Drive the control loop for a duration at constant power."""
    now = start
    end = start + seconds
    while now < end:
        firmware.step(now, dt, power, resident)
        now += dt
    return now


class TestFirmwareBasics:
    def test_starts_idle_at_idle_clock(self, firmware):
        assert firmware.state is FirmwareState.IDLE
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().idle_frequency_ghz)

    def test_kernel_arrival_boosts_immediately(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        assert firmware.state is FirmwareState.BOOST
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().boost_frequency_ghz)

    def test_negative_interval_rejected(self, firmware):
        with pytest.raises(ValueError):
            firmware.step(0.0, -1.0, 100.0, True)

    def test_reset_returns_to_idle(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        firmware.reset()
        assert firmware.state is FirmwareState.IDLE
        assert firmware.events == []

    def test_parks_after_long_idle(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 0.01, 120.0, resident=False)
        assert firmware.state is FirmwareState.IDLE


class TestThrottling:
    def test_sustained_overdraw_triggers_hard_throttle(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 2e-3, budget.board_limit_w * 1.05, resident=True)
        assert firmware.throttle_count() >= 1
        assert firmware.was_power_limited()

    def test_brief_overdraw_does_not_throttle(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        # One control period of overdraw, then back under the limit.
        firmware.step(0.0, 250e-6, budget.board_limit_w * 1.05, True)
        step_for(firmware, 2e-3, budget.board_limit_w * 0.8, resident=True, start=250e-6)
        assert firmware.throttle_count() == 0

    def test_power_below_limit_keeps_boost(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 5e-3, budget.board_limit_w * 0.8, resident=True)
        assert firmware.state is FirmwareState.BOOST
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().boost_frequency_ghz)

    def test_throttle_drops_to_sustained_clock(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().sustained_frequency_ghz)
        assert firmware.state is FirmwareState.THROTTLED

    def test_recovery_raises_clock_after_hold(self, firmware):
        budget = PowerBudget()
        dvfs = DVFSSpec()
        firmware.notify_kernel_arrival(0.0)
        now = step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
        # Power drops well below the limit once throttled; the clock should
        # creep back up after the hold-off.
        step_for(firmware, 8e-3, budget.board_limit_w * 0.75, resident=True, start=now)
        assert firmware.frequency_ghz > dvfs.sustained_frequency_ghz

    def test_recovery_stops_at_cap_target(self, firmware):
        budget = PowerBudget()
        config = firmware.config
        firmware.notify_kernel_arrival(0.0)
        now = step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
        # Simulate power tracking the cap target as the clock recovers.
        step_for(
            firmware, 10e-3, budget.board_limit_w * (config.cap_target + 0.01),
            resident=True, start=now,
        )
        assert firmware.state is FirmwareState.CAPPED

    def test_events_recorded_in_order(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 3e-3, budget.board_limit_w * 1.1, resident=True)
        times = [event.time_s for event in firmware.events]
        assert times == sorted(times)
        states = [event.state for event in firmware.events]
        assert FirmwareState.THROTTLED in states


class TestFiniteEventPower:
    """Regression: kernel-arrival boosts used to record ``power_w=NaN``,
    poisoning any aggregation over the event history."""

    def test_first_arrival_records_zero_power(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        boost_event = firmware.events[-1]
        assert boost_event.state is FirmwareState.BOOST
        assert boost_event.power_w == 0.0

    def test_arrival_after_steps_records_last_known_power(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 0.01, 130.0, resident=False)
        assert firmware.state is FirmwareState.IDLE
        firmware.notify_kernel_arrival(0.011)
        assert firmware.events[-1].state is FirmwareState.BOOST
        assert firmware.events[-1].power_w == pytest.approx(130.0)

    def test_all_event_fields_finite_in_throttling_scenario(self, firmware):
        import math

        budget = PowerBudget()
        for cycle in range(3):
            start = cycle * 12e-3
            firmware.notify_kernel_arrival(start)
            now = step_for(firmware, 4e-3, budget.board_limit_w * 1.1, resident=True, start=start)
            step_for(firmware, 6e-3, 120.0, resident=False, start=now)
        assert firmware.events
        for event in firmware.events:
            assert math.isfinite(event.time_s)
            assert math.isfinite(event.frequency_ghz)
            assert math.isfinite(event.power_w)

    def test_mean_event_power_is_finite_on_device_workload(self):
        import math

        from repro.gpu.device import SimulatedGPU
        from repro.gpu.spec import mi300x_spec
        from repro.kernels.workloads import cb_gemm

        spec = mi300x_spec()
        device = SimulatedGPU(spec, seed=3)
        descriptor = cb_gemm(8192).activity_descriptor(spec)
        for _ in range(3):
            device.park()
            for _ in range(4):
                device.execute_kernel(descriptor)
        events = device.firmware_events()
        assert events
        mean_power = sum(event.power_w for event in events) / len(events)
        assert math.isfinite(mean_power)


class TestFirmwareConfig:
    def test_custom_config_honoured(self):
        config = FirmwareConfig(excursion_window_s=100e-6, throttle_hold_s=1e-3)
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget(), config)
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 500e-6, budget.board_limit_w * 1.1, resident=True)
        assert firmware.throttle_count() == 1
