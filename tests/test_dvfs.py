"""Unit tests for the DVFS / power-cap firmware."""

import copy

import numpy as np
import pytest

from repro.gpu.dvfs import FirmwareConfig, FirmwareState, PowerManagementFirmware
from repro.gpu.spec import DVFSSpec, PowerBudget


@pytest.fixture()
def firmware():
    return PowerManagementFirmware(DVFSSpec(), PowerBudget())


def step_for(firmware, seconds, power, resident, start=0.0, dt=250e-6):
    """Drive the control loop for a duration at constant power."""
    now = start
    end = start + seconds
    while now < end:
        firmware.step(now, dt, power, resident)
        now += dt
    return now


class TestFirmwareBasics:
    def test_starts_idle_at_idle_clock(self, firmware):
        assert firmware.state is FirmwareState.IDLE
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().idle_frequency_ghz)

    def test_kernel_arrival_boosts_immediately(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        assert firmware.state is FirmwareState.BOOST
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().boost_frequency_ghz)

    def test_negative_interval_rejected(self, firmware):
        with pytest.raises(ValueError):
            firmware.step(0.0, -1.0, 100.0, True)

    def test_zero_interval_is_a_noop(self, firmware):
        """Regression: dt_s == 0 used to overwrite ``_last_power_w`` and run
        the state handlers on no elapsed time."""
        firmware.notify_kernel_arrival(0.0)
        firmware.step(250e-6, 250e-6, 200.0, True)
        before_events = firmware.events
        before_state = firmware.state
        before_frequency = firmware.frequency_ghz
        before_power = firmware._last_power_w
        frequency = firmware.step(300e-6, 0.0, 555.0, True)
        assert frequency == before_frequency
        assert firmware.state is before_state
        assert firmware.frequency_ghz == before_frequency
        assert firmware._last_power_w == before_power
        assert firmware.events == before_events

    def test_zero_interval_cannot_release_a_cap(self, firmware):
        """The concrete bug: a capped controller fed a zero-length interval
        at low power used to transition to RECOVERING instantly."""
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        now = step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
        now = step_for(
            firmware, 10e-3, budget.board_limit_w * firmware.config.cap_target + 1.0,
            resident=True, start=now,
        )
        assert firmware.state is FirmwareState.CAPPED
        firmware.step(now, 0.0, 10.0, True)
        assert firmware.state is FirmwareState.CAPPED

    def test_zero_interval_does_not_advance_idle_park(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        accum_before = firmware._idle_accum_s
        firmware.step(100e-6, 0.0, 120.0, False)
        assert firmware._idle_accum_s == accum_before
        assert firmware.state is FirmwareState.BOOST

    def test_reset_returns_to_idle(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        firmware.reset()
        assert firmware.state is FirmwareState.IDLE
        assert firmware.events == []

    def test_parks_after_long_idle(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 0.01, 120.0, resident=False)
        assert firmware.state is FirmwareState.IDLE


class TestThrottling:
    def test_sustained_overdraw_triggers_hard_throttle(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 2e-3, budget.board_limit_w * 1.05, resident=True)
        assert firmware.throttle_count() >= 1
        assert firmware.was_power_limited()

    def test_brief_overdraw_does_not_throttle(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        # One control period of overdraw, then back under the limit.
        firmware.step(0.0, 250e-6, budget.board_limit_w * 1.05, True)
        step_for(firmware, 2e-3, budget.board_limit_w * 0.8, resident=True, start=250e-6)
        assert firmware.throttle_count() == 0

    def test_power_below_limit_keeps_boost(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 5e-3, budget.board_limit_w * 0.8, resident=True)
        assert firmware.state is FirmwareState.BOOST
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().boost_frequency_ghz)

    def test_throttle_drops_to_sustained_clock(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
        assert firmware.frequency_ghz == pytest.approx(DVFSSpec().sustained_frequency_ghz)
        assert firmware.state is FirmwareState.THROTTLED

    def test_recovery_raises_clock_after_hold(self, firmware):
        budget = PowerBudget()
        dvfs = DVFSSpec()
        firmware.notify_kernel_arrival(0.0)
        now = step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
        # Power drops well below the limit once throttled; the clock should
        # creep back up after the hold-off.
        step_for(firmware, 8e-3, budget.board_limit_w * 0.75, resident=True, start=now)
        assert firmware.frequency_ghz > dvfs.sustained_frequency_ghz

    def test_recovery_stops_at_cap_target(self, firmware):
        budget = PowerBudget()
        config = firmware.config
        firmware.notify_kernel_arrival(0.0)
        now = step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
        # Simulate power tracking the cap target as the clock recovers.
        step_for(
            firmware, 10e-3, budget.board_limit_w * (config.cap_target + 0.01),
            resident=True, start=now,
        )
        assert firmware.state is FirmwareState.CAPPED

    def test_events_recorded_in_order(self, firmware):
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 3e-3, budget.board_limit_w * 1.1, resident=True)
        times = [event.time_s for event in firmware.events]
        assert times == sorted(times)
        states = [event.state for event in firmware.events]
        assert FirmwareState.THROTTLED in states


class TestFiniteEventPower:
    """Regression: kernel-arrival boosts used to record ``power_w=NaN``,
    poisoning any aggregation over the event history."""

    def test_first_arrival_records_zero_power(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        boost_event = firmware.events[-1]
        assert boost_event.state is FirmwareState.BOOST
        assert boost_event.power_w == 0.0

    def test_arrival_after_steps_records_last_known_power(self, firmware):
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 0.01, 130.0, resident=False)
        assert firmware.state is FirmwareState.IDLE
        firmware.notify_kernel_arrival(0.011)
        assert firmware.events[-1].state is FirmwareState.BOOST
        assert firmware.events[-1].power_w == pytest.approx(130.0)

    def test_all_event_fields_finite_in_throttling_scenario(self, firmware):
        import math

        budget = PowerBudget()
        for cycle in range(3):
            start = cycle * 12e-3
            firmware.notify_kernel_arrival(start)
            now = step_for(firmware, 4e-3, budget.board_limit_w * 1.1, resident=True, start=start)
            step_for(firmware, 6e-3, 120.0, resident=False, start=now)
        assert firmware.events
        for event in firmware.events:
            assert math.isfinite(event.time_s)
            assert math.isfinite(event.frequency_ghz)
            assert math.isfinite(event.power_w)

    def test_mean_event_power_is_finite_on_device_workload(self):
        import math

        from repro.gpu.device import SimulatedGPU
        from repro.gpu.spec import mi300x_spec
        from repro.kernels.workloads import cb_gemm

        spec = mi300x_spec()
        device = SimulatedGPU(spec, seed=3)
        descriptor = cb_gemm(8192).activity_descriptor(spec)
        for _ in range(3):
            device.park()
            for _ in range(4):
                device.execute_kernel(descriptor)
        events = device.firmware_events()
        assert events
        mean_power = sum(event.power_w for event in events) / len(events)
        assert math.isfinite(mean_power)


class TestFirmwareConfig:
    def test_custom_config_honoured(self):
        config = FirmwareConfig(excursion_window_s=100e-6, throttle_hold_s=1e-3)
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget(), config)
        budget = PowerBudget()
        firmware.notify_kernel_arrival(0.0)
        step_for(firmware, 500e-6, budget.board_limit_w * 1.1, resident=True)
        assert firmware.throttle_count() == 1

    def test_negative_cap_release_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            FirmwareConfig(cap_release_hysteresis=-0.01)

    def test_default_hysteresis_preserves_previous_behaviour(self):
        assert FirmwareConfig().cap_release_hysteresis == 0.03


def drive_to_cap(firmware):
    budget = PowerBudget()
    firmware.notify_kernel_arrival(0.0)
    now = step_for(firmware, 1.5e-3, budget.board_limit_w * 1.1, resident=True)
    now = step_for(
        firmware, 10e-3, budget.board_limit_w * firmware.config.cap_target + 1.0,
        resident=True, start=now,
    )
    assert firmware.state is FirmwareState.CAPPED
    return now


class TestCapReleaseHysteresis:
    """The cap-release margin was a hard-coded 0.03; it is now a validated
    ``FirmwareConfig`` field so sweeps and ablations can vary it."""

    RELEASE_FRACTION = 0.97  # below the default release point, above a wide one

    def test_power_inside_hysteresis_band_holds_the_cap(self):
        budget = PowerBudget()
        config = FirmwareConfig(cap_release_hysteresis=0.2)
        firmware = PowerManagementFirmware(DVFSSpec(), budget, config)
        now = drive_to_cap(firmware)
        firmware.step(now, 250e-6, budget.board_limit_w * self.RELEASE_FRACTION, True)
        assert firmware.state is FirmwareState.CAPPED

    def test_power_below_hysteresis_band_releases_the_cap(self):
        budget = PowerBudget()
        config = FirmwareConfig(cap_release_hysteresis=0.0)
        firmware = PowerManagementFirmware(DVFSSpec(), budget, config)
        now = drive_to_cap(firmware)
        firmware.step(now, 250e-6, budget.board_limit_w * self.RELEASE_FRACTION, True)
        assert firmware.state is FirmwareState.RECOVERING

    def test_default_matches_previous_hard_coded_margin(self):
        budget = PowerBudget()
        for fraction, expected in (
            (FirmwareConfig().cap_target - 0.029, FirmwareState.CAPPED),
            (FirmwareConfig().cap_target - 0.031, FirmwareState.RECOVERING),
        ):
            firmware = PowerManagementFirmware(DVFSSpec(), budget)
            now = drive_to_cap(firmware)
            firmware.step(now, 250e-6, budget.board_limit_w * fraction, True)
            assert firmware.state is expected, fraction


class TestIdleSpan:
    """`idle_span` must leave the controller exactly as N inlined non-resident
    ``step()`` calls would: same events, same bookkeeping, bit for bit."""

    PERIOD = 250e-6

    def boundaries(self, start, n, first_dt=None):
        """An iterated-addition boundary grid like the device's."""
        dts = []
        times = []
        now = start
        next_control = start + (first_dt if first_dt is not None else self.PERIOD)
        for _ in range(n):
            dt = next_control - now
            times.append(next_control)
            dts.append(dt)
            now = next_control
            next_control = next_control + self.PERIOD
        return np.asarray(times), np.asarray(dts)

    def scalar_twin(self, firmware):
        return copy.deepcopy(firmware)

    @pytest.mark.parametrize("n", [1, 2, 7, 9, 400])
    @pytest.mark.parametrize("power_w", [115.0, 87.3])
    def test_matches_inlined_steps_from_boost(self, n, power_w):
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget())
        firmware.notify_kernel_arrival(0.0)
        firmware.step(self.PERIOD, self.PERIOD, 300.0, True)
        twin = self.scalar_twin(firmware)
        times, dts = self.boundaries(self.PERIOD, n, first_dt=0.37 * self.PERIOD)

        for time_s, dt in zip(times, dts):
            mean = (power_w * dt) / dt
            twin.step(float(time_s), float(dt), mean, False)
        firmware.idle_span(self.PERIOD, float(times[-1] - self.PERIOD), power_w, times, dts)

        assert firmware.state is twin.state
        assert firmware.frequency_ghz == twin.frequency_ghz
        assert firmware._idle_accum_s == twin._idle_accum_s
        assert firmware._overdraw_accum_s == twin._overdraw_accum_s
        assert firmware._last_power_w == twin._last_power_w
        assert firmware.events == twin.events

    def test_park_event_synthesized_at_the_exact_boundary(self):
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget())
        firmware.notify_kernel_arrival(0.0)
        twin = self.scalar_twin(firmware)
        times, dts = self.boundaries(0.0, 40)
        for time_s, dt in zip(times, dts):
            twin.step(float(time_s), float(dt), 113.0, False)
        firmware.idle_span(0.0, float(times[-1]), 113.0, times, dts)
        park_events = [e for e in firmware.events if e.state is FirmwareState.IDLE]
        assert len(park_events) == 1
        assert park_events[0] == [e for e in twin.events if e.state is FirmwareState.IDLE][0]
        assert firmware.state is FirmwareState.IDLE
        assert firmware._idle_accum_s == twin._idle_accum_s

    def test_already_idle_controller_only_accumulates(self):
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget())
        assert firmware.state is FirmwareState.IDLE
        times, dts = self.boundaries(0.0, 12)
        firmware.idle_span(0.0, float(times[-1]), 110.0, times, dts)
        assert firmware.events == []
        assert firmware.state is FirmwareState.IDLE
        expected = 0.0
        for dt in dts:
            expected += dt
        assert firmware._idle_accum_s == expected

    def test_empty_span_is_a_noop(self):
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget())
        firmware.notify_kernel_arrival(0.0)
        before = (firmware.state, firmware._idle_accum_s, firmware._last_power_w)
        firmware.idle_span(0.0, 0.0, 110.0, np.empty(0), np.empty(0))
        assert (firmware.state, firmware._idle_accum_s, firmware._last_power_w) == before

    def test_mismatched_grid_rejected(self):
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget())
        with pytest.raises(ValueError):
            firmware.idle_span(0.0, 1e-3, 110.0, np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            firmware.idle_span(0.0, -1e-3, 110.0, np.zeros(2), np.ones(2))

    def test_grid_outside_the_span_rejected(self):
        firmware = PowerManagementFirmware(DVFSSpec(), PowerBudget())
        times, dts = self.boundaries(0.0, 4)
        # Boundary before the span start.
        with pytest.raises(ValueError):
            firmware.idle_span(float(times[0]), float(times[-1]), 110.0, times, dts)
        # Span too short to contain the last boundary.
        with pytest.raises(ValueError):
            firmware.idle_span(0.0, float(times[-2]), 110.0, times, dts)
