"""Unit tests for the simulated GPU device."""

import pytest

from repro.gpu.device import SimulatedGPU
from repro.gpu.dvfs import FirmwareState
from repro.kernels.workloads import cb_gemm, mb_gemv


@pytest.fixture()
def gemm_descriptor(spec):
    return cb_gemm(4096).activity_descriptor(spec)


@pytest.fixture()
def big_gemm_descriptor(spec):
    return cb_gemm(8192).activity_descriptor(spec)


class TestIdleAndRecording:
    def test_idle_advances_time(self, device):
        before = device.now_s()
        device.idle(5e-3)
        assert device.now_s() == pytest.approx(before + 5e-3)

    def test_negative_idle_rejected(self, device):
        with pytest.raises(ValueError):
            device.idle(-1.0)

    def test_recording_captures_idle_power(self, device):
        device.start_recording()
        device.idle(2e-3)
        segments = device.stop_recording()
        assert segments
        idle_total = device.power_model.idle_power().total_w
        for segment in segments:
            assert segment.power.total_w == pytest.approx(idle_total)

    def test_segments_are_contiguous_and_ordered(self, device, gemm_descriptor):
        device.start_recording()
        device.idle(1e-3)
        device.execute_kernel(gemm_descriptor)
        device.idle(1e-3)
        segments = device.stop_recording()
        for a, b in zip(segments, segments[1:]):
            assert b.start_s == pytest.approx(a.end_s, abs=1e-9)
            assert a.end_s > a.start_s

    def test_stop_without_recording_returns_empty(self, device):
        assert device.stop_recording() == []


class TestKernelExecution:
    def test_execution_advances_time_by_duration(self, device, gemm_descriptor):
        result = device.execute_kernel(gemm_descriptor)
        assert result.duration_s > 0
        assert device.now_s() == pytest.approx(result.end_s)

    def test_cold_then_warm_executions(self, device, gemm_descriptor):
        results = [device.execute_kernel(gemm_descriptor) for _ in range(5)]
        assert results[0].cold_caches
        assert not results[-1].cold_caches
        assert results[-1].duration_s < results[0].duration_s

    def test_cache_state_expires_after_long_idle(self, device, gemm_descriptor):
        for _ in range(4):
            device.execute_kernel(gemm_descriptor)
        device.idle(device.CACHE_RETENTION_S * 2)
        again = device.execute_kernel(gemm_descriptor)
        assert again.cold_caches

    def test_execution_energy_consistent_with_power(self, device, gemm_descriptor):
        result = device.execute_kernel(gemm_descriptor)
        assert result.energy_j == pytest.approx(
            result.mean_power.total_w * result.duration_s, rel=1e-6
        )

    def test_kernel_power_above_idle(self, device, gemm_descriptor):
        result = device.execute_kernel(gemm_descriptor)
        assert result.mean_power.total_w > device.power_model.idle_power().total_w

    def test_executions_recorded_only_while_recording(self, device, gemm_descriptor):
        device.execute_kernel(gemm_descriptor)
        assert device.executions() == []
        device.start_recording()
        device.execute_kernel(gemm_descriptor)
        assert len(device.executions()) == 1

    def test_frequency_boosts_on_kernel_arrival(self, device, gemm_descriptor):
        device.park()
        assert device.firmware.state is FirmwareState.IDLE
        device.execute_kernel(gemm_descriptor)
        assert device.firmware.frequency_ghz > device.spec.dvfs.idle_frequency_ghz


class TestPowerCapBehaviour:
    def test_large_gemm_triggers_throttle(self, device, big_gemm_descriptor):
        device.park()
        for _ in range(4):
            device.execute_kernel(big_gemm_descriptor)
        assert device.firmware.throttle_count() >= 1

    def test_small_gemv_never_throttles(self, device, spec):
        gemv = mb_gemv(4096).activity_descriptor(spec)
        device.park()
        for _ in range(30):
            device.execute_kernel(gemv)
        assert device.firmware.throttle_count() == 0

    def test_throttled_execution_slower_than_recovered(self, device, big_gemm_descriptor):
        device.park()
        results = [device.execute_kernel(big_gemm_descriptor) for _ in range(10)]
        frequencies = [result.mean_frequency_ghz for result in results]
        # The post-throttle executions run below boost; later ones recover.
        assert min(frequencies[2:6]) < max(frequencies[-2:])


class TestTimestampRead:
    def test_read_timestamp_advances_time(self, device):
        before = device.now_s()
        result = device.read_timestamp()
        assert device.now_s() > before
        assert result.round_trip_s > 0

    def test_read_timestamp_ticks_map_back_to_read_window(self, device):
        device.idle(1e-3)
        before = device.now_s()
        result = device.read_timestamp()
        capture = device.timestamp_counter.sim_time_of_ticks(result.gpu_ticks)
        assert before <= capture <= result.cpu_time_after_s
