"""Unit tests for the core data records and the Table I guidance table."""

import math

import pytest

from repro.core.guidance import GuidanceEntry, GuidanceTable, paper_guidance_table
from repro.core.records import (
    DelayCalibration,
    ExecutionRole,
    ExecutionTiming,
    LogOfInterest,
    PowerReading,
    RunRecord,
    TimestampAnchor,
    mean_duration,
)


def make_reading(ticks=1000, total=300.0):
    return PowerReading(
        gpu_timestamp_ticks=ticks, window_s=1e-3, total_w=total,
        components={"xcd": total * 0.7, "iod": total * 0.2, "hbm": total * 0.1},
    )


def make_run(num_executions=4, duration=100e-6, start=1.0):
    executions = []
    cursor = start
    for index in range(num_executions):
        executions.append(
            ExecutionTiming(index=index, cpu_start_s=cursor, cpu_end_s=cursor + duration)
        )
        cursor += duration + 5e-6
    return RunRecord(
        run_index=0,
        kernel_name="k",
        readings=(make_reading(),),
        executions=tuple(executions),
        anchor=TimestampAnchor(gpu_ticks=500, cpu_time_after_s=start - 1e-3, round_trip_s=20e-6),
        logger_period_s=1e-3,
        counter_frequency_hz=100e6,
        pre_delay_s=0.0,
    )


class TestPowerReading:
    def test_component_lookup(self):
        reading = make_reading(total=200.0)
        assert reading.component("total") == pytest.approx(200.0)
        assert reading.component("xcd") == pytest.approx(140.0)

    def test_missing_component_raises(self):
        with pytest.raises(KeyError):
            make_reading().component("nonexistent")

    def test_has_component(self):
        reading = make_reading()
        assert reading.has_component("total")
        assert reading.has_component("hbm")
        assert not reading.has_component("soc")


class TestExecutionTiming:
    def test_duration_and_contains(self):
        timing = ExecutionTiming(index=0, cpu_start_s=1.0, cpu_end_s=1.001)
        assert timing.duration_s == pytest.approx(1e-3)
        assert timing.contains(1.0005)
        assert not timing.contains(1.01)

    def test_rejects_inverted_times(self):
        with pytest.raises(ValueError):
            ExecutionTiming(index=0, cpu_start_s=2.0, cpu_end_s=1.0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            ExecutionTiming(index=-1, cpu_start_s=0.0, cpu_end_s=1.0)


class TestDelayCalibration:
    def test_one_way_is_half_round_trip(self):
        calibration = DelayCalibration(mean_round_trip_s=24e-6, std_round_trip_s=1e-6, samples=8)
        assert calibration.one_way_delay_s == pytest.approx(12e-6)

    def test_rejects_no_samples(self):
        with pytest.raises(ValueError):
            DelayCalibration(mean_round_trip_s=1e-6, std_round_trip_s=0.0, samples=0)


class TestRunRecord:
    def test_execution_accessors(self):
        run = make_run(num_executions=5)
        assert run.num_executions == 5
        assert run.first_execution.index == 0
        assert run.last_execution.index == 4
        assert run.ssp_execution.index == 4
        assert run.execution(2).index == 2

    def test_missing_execution_raises(self):
        with pytest.raises(KeyError):
            make_run().execution(99)

    def test_roles(self):
        run = make_run(num_executions=6)
        assert run.role_of(0, warmup_executions=3, sse_index=3) is ExecutionRole.WARMUP
        assert run.role_of(3, warmup_executions=3, sse_index=3) is ExecutionRole.SSE
        assert run.role_of(4, warmup_executions=3, sse_index=3) is ExecutionRole.INTERMEDIATE
        assert run.role_of(5, warmup_executions=3, sse_index=3) is ExecutionRole.SSP

    def test_mean_duration_helper(self):
        run = make_run(num_executions=3, duration=50e-6)
        assert mean_duration(run.executions) == pytest.approx(50e-6, rel=1e-6)
        assert mean_duration([]) == 0.0

    def test_invalid_counter_frequency(self):
        with pytest.raises(ValueError):
            RunRecord(
                run_index=0, kernel_name="k", readings=(), executions=(),
                anchor=TimestampAnchor(1, 0.0, 1e-6), logger_period_s=1e-3,
                counter_frequency_hz=0.0, pre_delay_s=0.0,
            )


class TestLogOfInterest:
    def test_power_accessor(self):
        loi = LogOfInterest(
            run_index=1, execution_index=2, reading=make_reading(total=400.0),
            window_end_cpu_s=1.0, toi_s=20e-6, toi_fraction=0.2,
        )
        assert loi.power() == pytest.approx(400.0)
        assert loi.power("iod") == pytest.approx(80.0)

    def test_rejects_negative_toi(self):
        with pytest.raises(ValueError):
            LogOfInterest(
                run_index=0, execution_index=0, reading=make_reading(),
                window_end_cpu_s=0.0, toi_s=-1.0, toi_fraction=0.0,
            )


class TestGuidanceTable:
    def test_paper_table_has_four_rows(self):
        table = paper_guidance_table()
        assert len(table.entries) == 4

    def test_lookup_matches_paper_rows(self):
        table = paper_guidance_table()
        assert table.lookup(30e-6).runs == 400
        assert table.lookup(30e-6).binning_margin == pytest.approx(0.05)
        assert table.lookup(100e-6).runs == 200
        assert table.lookup(100e-6).binning_margin == pytest.approx(0.05)
        assert table.lookup(500e-6).binning_margin == pytest.approx(0.02)
        assert table.lookup(5e-3).binning_margin == pytest.approx(0.02)

    def test_loi_resolution_matches_paper(self):
        table = paper_guidance_table()
        assert table.lookup(30e-6).loi_resolution_s == pytest.approx(5e-6)
        assert table.lookup(100e-6).loi_resolution_s == pytest.approx(10e-6)

    def test_recommended_lois_floor(self):
        entry = paper_guidance_table().lookup(30e-6)
        assert entry.recommended_lois(5e-6) >= 4
        assert entry.recommended_lois(50e-6) == 10

    def test_sub_range_falls_back_to_first_row(self):
        table = paper_guidance_table()
        assert table.lookup(10e-6).runs == 400

    def test_invalid_execution_time(self):
        with pytest.raises(ValueError):
            paper_guidance_table().lookup(0.0)

    def test_overlapping_entries_rejected(self):
        overlapping = [
            GuidanceEntry(0.0, 1e-3, 100, 1e5, 0.05),
            GuidanceEntry(0.5e-3, math.inf, 100, 1e5, 0.05),
        ]
        with pytest.raises(ValueError):
            GuidanceTable(overlapping)

    def test_rows_rendering(self):
        rows = paper_guidance_table().rows()
        assert len(rows) == 4
        assert rows[0]["runs"] == 400
