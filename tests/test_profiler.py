"""Integration tests for the nine-step FinGraV profiler and the baselines."""

import pytest

from repro.core.baselines import (
    CoarseSamplerEstimator,
    reduced_runs_profiler,
    sse_only_profiler,
    unsynchronized_profiler,
)
from repro.core.profiler import FinGraVProfiler, ProfilerConfig
from repro.core.report import guidance_report, result_report
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.kernels.workloads import cb_gemm, mb_gemv


class TestProfilerOnShortKernel:
    def test_result_structure(self, cb2k_result):
        result = cb2k_result
        assert result.kernel_name == "CB-2K-GEMM"
        assert 25e-6 <= result.execution_time_s <= 50e-6
        assert result.guidance.runs == 400
        assert result.plan.warmup_executions == 3
        assert result.plan.sse_executions == 4
        # SSP executions follow the window-fill rule for a ~35 us kernel.
        assert result.plan.ssp_executions >= 25
        assert result.num_golden_runs <= result.num_runs
        assert result.ssp_loi_count >= 4

    def test_ssp_power_between_idle_and_board_limit(self, cb2k_result, spec):
        ssp = cb2k_result.ssp_profile.mean_power_w("total")
        assert spec.power.idle_total_w < ssp < spec.power.board_limit_w

    def test_sse_much_lower_than_ssp_for_short_kernel(self, cb2k_result):
        # Paper: up to ~80% error for CB-2K-GEMM; the reproduction lands well
        # above 40%.
        assert cb2k_result.sse_vs_ssp_error() > 0.4

    def test_component_breakdown_present(self, cb2k_result):
        summary = cb2k_result.ssp_profile.component_summary()
        assert set(summary) >= {"total", "xcd", "iod", "hbm"}
        assert summary["xcd"] > summary["iod"] > 0

    def test_summary_keys(self, cb2k_result):
        summary = cb2k_result.summary()
        assert summary["kernel"] == "CB-2K-GEMM"
        assert "sse_vs_ssp_error" in summary

    def test_report_rendering(self, cb2k_result):
        from repro.core.guidance import paper_guidance_table

        text = result_report(cb2k_result)
        assert "CB-2K-GEMM" in text
        assert "SSE vs SSP" in text
        assert "400" in guidance_report(paper_guidance_table())


class TestProfilerOnThrottledKernel:
    def test_throttling_detected_and_ssp_extended(self, cb8k_result):
        assert cb8k_result.plan.throttling_detected
        assert cb8k_result.plan.ssp_executions > cb8k_result.plan.sse_executions

    def test_moderate_sse_vs_ssp_spread(self, cb8k_result):
        # Paper: ~20% for CB-8K-GEMM; error must be far below the CB-2K error.
        assert 0.05 < cb8k_result.sse_vs_ssp_error() < 0.35

    def test_ssp_power_near_board_limit(self, cb8k_result, spec):
        ssp = cb8k_result.ssp_profile.mean_power_w("total")
        assert ssp > 0.8 * spec.power.board_limit_w

    def test_many_lois_for_long_kernel(self, cb8k_result):
        # A >1 ms kernel yields at least one LOI per golden run.
        assert cb8k_result.ssp_loi_count >= 0.8 * cb8k_result.num_golden_runs


class TestProfilerOnMemoryBoundKernel:
    def test_gemv_profile(self, gemv8k_result, spec):
        assert gemv8k_result.kernel_name == "MB-8K-GEMV"
        total = gemv8k_result.ssp_profile.mean_power_w("total")
        assert spec.power.idle_total_w < total < 0.7 * spec.power.board_limit_w

    def test_gemv_iod_heavier_than_hbm(self, gemv8k_result):
        summary = gemv8k_result.ssp_profile.component_summary()
        assert summary["iod"] > summary["hbm"]


class TestProfilerConfiguration:
    def test_explicit_runs_override_guidance(self, backend):
        profiler = FinGraVProfiler(
            backend, ProfilerConfig(seed=3, max_additional_runs=0, refine_ssp_with_power_search=False)
        )
        result = profiler.profile(cb_gemm(4096), runs=12)
        assert result.num_runs == 12

    def test_config_with_overrides(self):
        config = ProfilerConfig().with_overrides(runs=10, synchronize=False)
        assert config.runs == 10
        assert not config.synchronize

    def test_invalid_run_count_rejected(self, backend):
        profiler = FinGraVProfiler(backend, ProfilerConfig(max_additional_runs=0))
        with pytest.raises(ValueError):
            profiler.profile(cb_gemm(4096), runs=0)

    def test_interleaved_preceding_passed_through(self, backend):
        profiler = FinGraVProfiler(
            backend,
            ProfilerConfig(seed=3, max_additional_runs=0, refine_ssp_with_power_search=False,
                           differentiate=False),
        )
        result = profiler.profile(cb_gemm(4096), runs=6, preceding=[(mb_gemv(4096), 2)])
        assert all(len(run.preceding_executions) == 2 for run in result.runs)
        assert result.metadata["preceding"] == ["MB-4K-GEMV x2"]


class TestBaselines:
    def test_sse_only_profiler_runs_four_executions(self, spec):
        backend = SimulatedDeviceBackend(spec=spec, seed=21)
        profiler = sse_only_profiler(backend, runs=20)
        result = profiler.profile(cb_gemm(4096), runs=20)
        assert all(run.num_executions == result.plan.sse_executions for run in result.runs)

    def test_unsynchronized_profiler_differs_from_synchronized(self, spec):
        seed = 22
        kernel = cb_gemm(4096)
        sync_backend = SimulatedDeviceBackend(spec=spec, seed=seed)
        sync_result = FinGraVProfiler(
            sync_backend, ProfilerConfig(seed=5, max_additional_runs=60)
        ).profile(kernel, runs=30)
        unsync_backend = SimulatedDeviceBackend(spec=spec, seed=seed)
        unsync_result = unsynchronized_profiler(unsync_backend, seed=5).profile(kernel, runs=30)
        # Identical simulated runs, different log placement -> different profiles.
        sync_swing = sync_result.run_profile.max_power_w() - sync_result.run_profile.min_power_w()
        unsync_swing = (
            unsync_result.run_profile.max_power_w() - unsync_result.run_profile.min_power_w()
        )
        assert sync_swing > 0
        assert sync_result.ssp_profile.mean_power_w() != pytest.approx(
            unsync_result.ssp_profile.mean_power_w(), rel=1e-3
        ) or unsync_swing != pytest.approx(sync_swing, rel=1e-3)

    def test_reduced_runs_profiler_caps_runs(self, spec):
        backend = SimulatedDeviceBackend(spec=spec, seed=23)
        result = reduced_runs_profiler(backend, runs=15).profile(cb_gemm(4096), runs=15)
        assert result.num_runs == 15

    def test_coarse_estimator_reports_poor_coverage(self, spec):
        kernel = cb_gemm(2048)
        coarse_backend = SimulatedDeviceBackend(
            spec=spec, seed=24, config=BackendConfig(sampler="coarse")
        )
        records = [
            coarse_backend.run(kernel, executions=6, pre_delay_s=0.0, run_index=i)
            for i in range(8)
        ]
        report = CoarseSamplerEstimator().coverage(records)
        assert report.execution_coverage < 0.5
        assert report.total_readings > 0
