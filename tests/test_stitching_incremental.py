"""Tests for the incremental StitchedRunSeries and ProfileStitcher.extend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.records import ReadingColumns
from repro.core.stitching import ProfileStitcher, StitchedRunSeries
from repro.gpu.backend import SimulatedDeviceBackend
from repro.kernels.workloads import cb_gemm


@pytest.fixture(scope="module")
def records():
    backend = SimulatedDeviceBackend(seed=77)
    kernel = cb_gemm(2048)
    return [
        backend.run(kernel, executions=20, pre_delay_s=(i % 4) * 2.7e-4, run_index=i)
        for i in range(10)
    ]


def series_state(series: StitchedRunSeries):
    return (
        series.kernel_name,
        dict(series.lois_by_run),
        sorted(series.runs),
        [
            (loi.run_index, loi.execution_index, loi.window_end_cpu_s, loi.toi_s)
            for loi in series.all_lois()
        ],
    )


class TestExtend:
    def test_extend_matches_collect_from_scratch(self, records):
        stitcher = ProfileStitcher()
        full = stitcher.collect(records)
        partial = stitcher.collect(records[:4])
        extended = stitcher.extend(partial, records[4:])
        assert extended is partial
        assert series_state(extended) == series_state(full)

    def test_extend_in_batches(self, records):
        stitcher = ProfileStitcher()
        series = stitcher.collect(records[:3])
        for start in range(3, len(records), 2):
            stitcher.extend(series, records[start:start + 2])
        assert series_state(series) == series_state(stitcher.collect(records))

    def test_extend_only_extracts_new_runs(self, records, monkeypatch):
        import repro.core.stitching as stitching_module

        stitcher = ProfileStitcher()
        series = stitcher.collect(records[:5])
        extracted = []
        original_batch = stitching_module.extract_lois_batch

        def counting_batch(runs, **kwargs):
            extracted.extend(run.run_index for run in runs)
            return original_batch(runs, **kwargs)

        original_extract = ProfileStitcher._extract

        def counting_extract(self, run):
            extracted.append(run.run_index)
            return original_extract(self, run)

        monkeypatch.setattr(stitching_module, "extract_lois_batch", counting_batch)
        monkeypatch.setattr(ProfileStitcher, "_extract", counting_extract)
        stitcher.extend(series, records[5:])
        assert extracted == [run.run_index for run in records[5:]]

    def test_duplicate_run_rejected(self, records):
        stitcher = ProfileStitcher()
        series = stitcher.collect(records[:2])
        with pytest.raises(ValueError):
            stitcher.extend(series, records[:1])

    def test_profiles_unchanged_by_incremental_construction(self, records):
        stitcher = ProfileStitcher()
        full = stitcher.collect(records)
        incremental = stitcher.collect(records[:6])
        stitcher.extend(incremental, records[6:])
        for build in (stitcher.ssp_profile, stitcher.run_profile):
            a, b = build(full), build(incremental)
            assert np.array_equal(a.times(), b.times())
            assert np.array_equal(a.series(), b.series())


class TestCountingViews:
    def test_counts_match_list_filters(self, records):
        series = ProfileStitcher().collect(records)
        lois = series.all_lois()
        assert series.num_lois == len(lois)
        golden = {records[i].run_index for i in (0, 2, 4, 6)}
        for min_index in (0, 5, 12):
            expected = sum(
                1 for loi in lois
                if loi.execution_index >= min_index and loi.run_index in golden
            )
            assert series.count_lois(
                min_execution_index=min_index, golden_runs=golden
            ) == expected
        for exec_index in (3, 19):
            expected = sum(1 for loi in lois if loi.execution_index == exec_index)
            assert series.count_lois(execution_index=exec_index) == expected

    def test_last_execution_counts(self, records):
        series = ProfileStitcher().collect(records)
        assert series.count_last_execution_lois() == len(series.lois_for_last_execution())
        golden = {records[0].run_index, records[1].run_index}
        expected = sum(
            1 for loi in series.lois_for_last_execution() if loi.run_index in golden
        )
        assert series.count_last_execution_lois(golden) == expected

    def test_counts_refresh_after_extend(self, records):
        stitcher = ProfileStitcher()
        series = stitcher.collect(records[:5])
        before = series.count_lois()
        assert before == series.num_lois
        stitcher.extend(series, records[5:])
        assert series.count_lois() == series.num_lois
        assert series.count_lois() >= before

    def test_lois_from_execution_matches_filter(self, records):
        series = ProfileStitcher().collect(records)
        for min_index in (0, 7, 19):
            expected = [
                loi for loi in series.all_lois() if loi.execution_index >= min_index
            ]
            assert series.lois_from_execution(min_index) == expected


class TestColumnarCaches:
    def test_reading_columns_cached_per_record(self, records):
        run = records[0]
        assert run.reading_columns() is run.reading_columns()
        assert run.execution_columns() is run.execution_columns()

    def test_reading_columns_values(self, records):
        run = records[0]
        columns = run.reading_columns()
        assert columns.num_readings == len(run.readings)
        assert columns.uniform_components
        np.testing.assert_array_equal(
            columns.gpu_timestamp_ticks,
            np.asarray([r.gpu_timestamp_ticks for r in run.readings]),
        )
        np.testing.assert_array_equal(
            columns.powers_w["total"], np.asarray([r.total_w for r in run.readings])
        )
        np.testing.assert_array_equal(
            columns.powers_w["xcd"],
            np.asarray([r.components["xcd"] for r in run.readings]),
        )

    def test_empty_reading_columns(self):
        columns = ReadingColumns.from_readings(())
        assert columns.num_readings == 0
        assert columns.uniform_components

    def test_execution_columns_sorted(self, records):
        run = records[0]
        columns = run.execution_columns()
        assert np.all(np.diff(columns.starts_s) >= 0)
        for sorted_pos, tuple_pos in enumerate(columns.positions):
            assert run.executions[tuple_pos].cpu_start_s == columns.starts_s[sorted_pos]
            assert run.executions[tuple_pos].index == columns.indices[sorted_pos]
