"""Unit tests for the power telemetry (averaging logger, coarse and instant samplers)."""

import numpy as np
import pytest

from repro.gpu.clocks import GPUTimestampCounter, SimulationClock
from repro.gpu.device import PowerSegment
from repro.gpu.power_model import ComponentPower
from repro.gpu.spec import ClockSpec
from repro.gpu.telemetry import (
    AveragingPowerLogger,
    CoarsePowerSampler,
    InstantaneousPowerSampler,
)

IDLE = ComponentPower(xcd_w=55.0, iod_w=35.0, hbm_w=25.0)
BUSY = ComponentPower(xcd_w=455.0, iod_w=45.0, hbm_w=30.0)


@pytest.fixture()
def counter():
    return GPUTimestampCounter(ClockSpec(), SimulationClock(), np.random.default_rng(0))


@pytest.fixture()
def logger(counter):
    return AveragingPowerLogger(counter, period_s=1e-3, idle_power=IDLE)


def segment(start, end, power):
    return PowerSegment(start_s=start, end_s=end, power=power)


class TestAveragingPowerLogger:
    def test_rejects_nonpositive_period(self, counter):
        with pytest.raises(ValueError):
            AveragingPowerLogger(counter, period_s=0.0, idle_power=IDLE)

    def test_sample_times_on_absolute_grid(self, logger):
        times = logger.sample_times_between(0.0005, 0.0042)
        assert times == pytest.approx([0.001, 0.002, 0.003, 0.004])

    def test_sample_count_matches_duration(self, logger):
        samples = logger.samples([segment(0.0, 0.01, IDLE)], 0.0, 0.01)
        assert len(samples) == 10 or len(samples) == 11

    def test_constant_power_reported_exactly(self, logger):
        samples = logger.samples([segment(0.0, 0.01, BUSY)], 0.001, 0.009)
        for sample in samples:
            assert sample.power.total_w == pytest.approx(BUSY.total_w)

    def test_window_average_mixes_idle_and_busy(self, logger):
        # Busy for exactly half of the window [0.001, 0.002].
        segments = [segment(0.0, 0.0015, IDLE), segment(0.0015, 0.01, BUSY)]
        samples = logger.samples(segments, 0.0015, 0.0025)
        first = samples[0]  # window [0.001, 0.002]
        expected = 0.5 * IDLE.total_w + 0.5 * BUSY.total_w
        assert first.power.total_w == pytest.approx(expected, rel=1e-6)

    def test_gaps_filled_with_idle_power(self, logger):
        # Segments only cover the second half of the first window.
        samples = logger.samples([segment(0.0005, 0.001, BUSY)], 0.0, 0.0011)
        sample = samples[-1]
        expected = 0.5 * IDLE.total_w + 0.5 * BUSY.total_w
        assert sample.power.total_w == pytest.approx(expected, rel=1e-6)

    def test_gpu_timestamps_attached(self, logger, counter):
        samples = logger.samples([segment(0.0, 0.005, BUSY)], 0.0, 0.005)
        for sample in samples:
            assert sample.gpu_timestamp_ticks == counter.ticks_at(sample.window_end_s)

    def test_energy_conservation_over_aligned_span(self, logger):
        # Average of samples over an exactly covered span equals the true mean.
        segments = [segment(0.0, 0.002, IDLE), segment(0.002, 0.004, BUSY)]
        samples = logger.samples(segments, 0.0, 0.004)
        # Windows: (0,1], (1,2], (2,3], (3,4] ms -> first two idle, last two busy.
        assert len(samples) == 4
        reported = np.mean([s.power.total_w for s in samples])
        assert reported == pytest.approx((IDLE.total_w + BUSY.total_w) / 2, rel=1e-6)

    def test_invalid_range_rejected(self, logger):
        with pytest.raises(ValueError):
            logger.sample_times_between(1.0, 0.5)

    def test_phase_offset_shifts_grid(self, counter):
        offset_logger = AveragingPowerLogger(
            counter, period_s=1e-3, idle_power=IDLE, phase_offset_s=0.4e-3
        )
        times = offset_logger.sample_times_between(0.0, 0.0025)
        assert times == pytest.approx([0.0004, 0.0014, 0.0024])


class TestCoarsePowerSampler:
    def test_default_period_is_tens_of_ms(self, counter):
        sampler = CoarsePowerSampler(counter, IDLE)
        assert sampler.period_s >= 10e-3

    def test_misses_short_activity(self, counter):
        sampler = CoarsePowerSampler(counter, IDLE, period_s=20e-3)
        # A 100 us burst somewhere inside a 40 ms span: at most a tiny bump.
        segments = [
            segment(0.0, 0.0101, IDLE),
            segment(0.0101, 0.0102, BUSY),
            segment(0.0102, 0.04, IDLE),
        ]
        samples = sampler.samples(segments, 0.0, 0.04)
        assert len(samples) == 2
        for sample in samples:
            assert sample.power.total_w < IDLE.total_w + 0.02 * (BUSY.total_w - IDLE.total_w)


class TestInstantaneousSampler:
    def test_reports_point_values(self, counter):
        sampler = InstantaneousPowerSampler(counter, period_s=100e-6, idle_power=IDLE)
        segments = [segment(0.0, 0.001, IDLE), segment(0.001, 0.002, BUSY)]
        samples = sampler.samples(segments, 0.0, 0.002)
        values = {round(s.window_end_s, 6): s.power.total_w for s in samples}
        assert values[0.0005] == pytest.approx(IDLE.total_w)
        assert values[0.0015] == pytest.approx(BUSY.total_w)

    def test_window_length_zero(self, counter):
        sampler = InstantaneousPowerSampler(counter, period_s=100e-6, idle_power=IDLE)
        samples = sampler.samples([segment(0.0, 0.001, BUSY)], 0.0, 0.001)
        assert all(s.window_s == 0.0 for s in samples)

    def test_rejects_nonpositive_period(self, counter):
        with pytest.raises(ValueError):
            InstantaneousPowerSampler(counter, period_s=0.0, idle_power=IDLE)
