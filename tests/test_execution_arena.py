"""Tests for the execution-record arena and the lazy record views.

The vectorized backend stages launch-sequence timings in an
:class:`ExecutionArena` and ships power readings as a columnar
:class:`PowerReadings` view; both must be drop-in replacements for the
reference path's tuples of frozen record objects -- same values, equality,
iteration, pickling -- while exposing their arrays to columnar consumers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.records import (
    ExecutionArena,
    ExecutionColumns,
    ExecutionTiming,
    ExecutionTimings,
    PowerReading,
    PowerReadings,
    ReadingColumns,
)
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm, mb_gemv


def make_view(n: int = 4) -> ExecutionTimings:
    starts = 1e-3 + np.arange(n) * 50e-6
    return ExecutionTimings(
        indices=np.arange(n),
        starts_s=starts,
        ends_s=starts + 30e-6,
        kernel_names=["K"] * n,
    )


def make_readings(n: int = 5) -> PowerReadings:
    return PowerReadings(
        gpu_timestamp_ticks=np.arange(n) * 1000 + 17,
        window_s=1e-3,
        total_w=100.0 + np.arange(n, dtype=float),
        component_names=("xcd", "iod", "hbm"),
        components_w=np.arange(3 * n, dtype=float).reshape(n, 3),
    )


class TestExecutionTimingsView:
    def test_materialises_reference_objects(self):
        view = make_view(3)
        reference = tuple(
            ExecutionTiming(
                index=i,
                cpu_start_s=float(view.starts_s[i]),
                cpu_end_s=float(view.ends_s[i]),
                kernel_name="K",
            )
            for i in range(3)
        )
        assert len(view) == 3
        assert tuple(view) == reference
        assert view == reference  # and against a plain tuple
        assert view[1] == reference[1]
        assert view[-1] == reference[-1]
        assert view[1:] == reference[1:]

    def test_repeated_indexing_returns_same_object(self):
        view = make_view()
        assert view[2] is view[2]
        materialised = tuple(view)
        assert view[2] is materialised[2]

    def test_durations_match_object_path(self):
        view = make_view()
        assert view.durations_s().tolist() == [t.duration_s for t in view]

    def test_pickle_round_trip(self):
        view = make_view()
        _ = view[0]  # populate the per-item cache; it must not be pickled
        clone = pickle.loads(pickle.dumps(view))
        assert clone == view
        assert clone._items is None

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTimings([0, 1], [0.0], [1.0], ["K"])


class TestPowerReadingsView:
    def test_materialises_reference_objects(self):
        view = make_readings(4)
        reference = tuple(
            PowerReading(
                gpu_timestamp_ticks=int(view.gpu_timestamp_ticks[i]),
                window_s=1e-3,
                total_w=float(view.total_w[i]),
                components={
                    "xcd": float(view.components_w[i, 0]),
                    "iod": float(view.components_w[i, 1]),
                    "hbm": float(view.components_w[i, 2]),
                },
            )
            for i in range(4)
        )
        assert tuple(view) == reference
        assert view == reference
        assert view[2] == reference[2]
        assert view[2] is view[2]

    def test_pickle_round_trip(self):
        view = make_readings()
        clone = pickle.loads(pickle.dumps(view))
        assert clone == view

    def test_reading_columns_adoption_matches_object_build(self):
        view = make_readings(6)
        adopted = ReadingColumns.from_readings(view)
        rebuilt = ReadingColumns(tuple(view))
        assert adopted.uniform_components and rebuilt.uniform_components
        assert np.array_equal(adopted.gpu_timestamp_ticks, rebuilt.gpu_timestamp_ticks)
        assert np.array_equal(adopted.window_s, rebuilt.window_s)
        assert list(adopted.powers_w) == list(rebuilt.powers_w)
        for name, values in rebuilt.powers_w.items():
            assert np.array_equal(adopted.powers_w[name], values)

    def test_execution_columns_adoption_matches_object_build(self):
        view = make_view(5)
        adopted = ExecutionColumns.from_executions(view)
        rebuilt = ExecutionColumns.from_executions(tuple(view))
        for attribute in ("indices", "starts_s", "ends_s", "positions"):
            assert np.array_equal(
                getattr(adopted, attribute), getattr(rebuilt, attribute)
            )


class TestExecutionArena:
    def test_take_snapshots_and_resets(self):
        arena = ExecutionArena()
        append_start, append_end = arena.stage("A", 0, 2)
        append_start(1.0), append_end(2.0)
        append_start(3.0), append_end(4.0)
        append_start, append_end = arena.stage("B", 7, 1)
        append_start(5.0), append_end(6.0)
        view = arena.take()
        assert view.kernel_names == ("A", "A", "B")
        assert view.indices.tolist() == [0, 1, 7]
        assert view.starts_s.tolist() == [1.0, 3.0, 5.0]
        assert arena.take() == ()  # reset after the snapshot

    def test_mismatched_staging_detected(self):
        arena = ExecutionArena()
        append_start, append_end = arena.stage("A", 0, 2)
        append_start(1.0), append_end(2.0)
        with pytest.raises(ValueError):
            arena.take()

    def test_snapshot_survives_arena_reuse(self):
        arena = ExecutionArena()
        append_start, append_end = arena.stage("A", 0, 1)
        append_start(1.0), append_end(2.0)
        first = arena.take()
        append_start, append_end = arena.stage("B", 0, 1)
        append_start(9.0), append_end(10.0)
        arena.take()
        assert first.starts_s.tolist() == [1.0]


class TestBackendRecordViews:
    """The arena path's records must be indistinguishable from the reference."""

    @pytest.fixture(scope="class")
    def record_pair(self):
        kernel = cb_gemm(2048)
        preceding = [(mb_gemv(4096), 3)]
        fast = SimulatedDeviceBackend(spec=mi300x_spec(), seed=11)
        reference = SimulatedDeviceBackend(
            spec=mi300x_spec(), seed=11, config=BackendConfig(vectorized=False)
        )
        return (
            fast.run(kernel, executions=12, pre_delay_s=0.3e-3, run_index=2,
                     preceding=preceding),
            reference.run(kernel, executions=12, pre_delay_s=0.3e-3, run_index=2,
                          preceding=preceding),
        )

    def test_records_equal(self, record_pair):
        fast, reference = record_pair
        assert isinstance(fast.executions, ExecutionTimings)
        assert isinstance(fast.readings, PowerReadings)
        assert isinstance(fast.preceding_executions, ExecutionTimings)
        assert fast == reference

    def test_fast_accessors_match_reference(self, record_pair):
        fast, reference = record_pair
        assert fast.execution_durations() == reference.execution_durations()
        assert fast.execution(5) == reference.execution(5)
        with pytest.raises(KeyError):
            fast.execution(99)
        assert fast.ssp_execution == reference.ssp_execution

    def test_record_pickle_round_trip_drops_caches(self, record_pair):
        fast, _ = record_pair
        fast.reading_columns()
        fast.execution_columns()
        clone = pickle.loads(pickle.dumps(fast, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == fast
        assert "_reading_columns" not in clone.__dict__
        assert "_execution_columns" not in clone.__dict__
        # and the clone can rebuild its columns
        assert np.array_equal(
            clone.reading_columns().gpu_timestamp_ticks,
            fast.reading_columns().gpu_timestamp_ticks,
        )

    def test_ground_truth_execution_log_matches_reference(self, record_pair):
        kernel = cb_gemm(2048)
        fast = SimulatedDeviceBackend(spec=mi300x_spec(), seed=13)
        reference = SimulatedDeviceBackend(
            spec=mi300x_spec(), seed=13, config=BackendConfig(vectorized=False)
        )
        fast.run(kernel, executions=6, pre_delay_s=0.0)
        reference.run(kernel, executions=6, pre_delay_s=0.0)
        fast_truth = fast.device.executions()
        reference_truth = reference.device.executions()
        assert len(fast_truth) == len(reference_truth) == 6
        for a, b in zip(fast_truth, reference_truth):
            assert a.kernel_name == b.kernel_name
            assert a.start_s == b.start_s
            assert a.end_s == b.end_s
            assert a.cold_caches == b.cold_caches
            # Engine tolerances mirror tests/test_device_equivalence.py (the
            # closed-form idle-span warmth bounds the power divergence).
            assert a.energy_j == pytest.approx(b.energy_j, rel=1e-9)
            assert a.mean_frequency_ghz == pytest.approx(b.mean_frequency_ghz, rel=1e-12)

    def test_execution_log_materialisation_matches_returned_result(self):
        device = SimulatedDeviceBackend(spec=mi300x_spec(), seed=17).device
        kernel = cb_gemm(2048).activity_descriptor(device.spec)
        device.start_recording()
        returned = [device.execute_kernel(kernel) for _ in range(3)]
        logged = device.executions()
        device.stop_recording()
        assert logged == returned  # exact float round trip through the log
