"""The static-analysis suite: every rule trips, pragmas round-trip, and the
seeded mutations from the acceptance criteria are each caught.

Fixture tests run single checker families over tiny synthetic trees; the
mutation self-tests copy the real ``src/repro`` tree, perturb one thing
(an unseeded RNG in ``gpu/device.py``, an un-keyed ``SweepConfig`` field, a
kernel body, a C constant) and assert the corresponding checker notices.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.sweep import ProfileJob, _CACHE_SCHEMA, job_key, kernel_spec
from repro.statics import Project, run_all
from repro.statics.base import apply_pragmas
from repro.statics.cachekey import check_cache_key
from repro.statics.cli import main
from repro.statics.contracts import check_contracts
from repro.statics.determinism import check_determinism
from repro.statics.parity import check_parity, write_manifest

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def make_project(root: Path, files: dict[str, str]) -> Project:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return Project(root)


def copy_repo(tmp_path: Path) -> Project:
    root = tmp_path / "repro"
    shutil.copytree(
        REPO_SRC, root, ignore=shutil.ignore_patterns("__pycache__")
    )
    return Project(root)


def rewrite(project: Project, rel: str, old: str, new: str, count: int = 1) -> None:
    path = project.root / rel
    text = path.read_text()
    assert old in text, f"mutation anchor {old!r} not found in {rel}"
    path.write_text(text.replace(old, new, count))


def rules_of(findings) -> set[str]:
    return {finding.rule for finding in findings}


def determinism_active(project: Project):
    return apply_pragmas(project, check_determinism(project))[0]


# --------------------------------------------------------------------- #
# Determinism lint fixtures.
# --------------------------------------------------------------------- #
class TestDeterminismRules:
    def test_wall_clock_and_rng_and_hash_and_sets(self, tmp_path):
        project = make_project(tmp_path, {"gpu/device.py": (
            "import time\n"
            "import random\n"
            "import numpy as np\n"
            "stamp = time.time()\n"
            "rng = np.random.default_rng()\n"
            "np.random.seed(7)\n"
            "draw = random.random()\n"
            "token = hash('x')\n"
            "marker = id(object())\n"
            "for item in {1, 2}:\n"
            "    print(item)\n"
            "ordered = list(set('ab'))\n"
        )})
        findings = determinism_active(project)
        by_line = {finding.line: finding.rule for finding in findings}
        assert by_line[4] == "wall-clock"
        assert by_line[5] == "unseeded-rng"
        assert by_line[6] == "unseeded-rng"
        assert by_line[7] == "unseeded-rng"
        assert by_line[8] == "identity-hash"
        assert by_line[9] == "identity-hash"
        assert by_line[10] == "set-order"
        assert by_line[12] == "set-order"
        assert len(findings) == 8

    def test_clean_constructs_not_flagged(self, tmp_path):
        project = make_project(tmp_path, {"core/clean.py": (
            "import time\n"
            "import numpy as np\n"
            "elapsed = time.perf_counter()\n"
            "tick = time.monotonic()\n"
            "rng = np.random.default_rng(42)\n"
            "stable = sorted(set('ab'))\n"
            "member = 'a' in {'a', 'b'}\n"
        )})
        assert determinism_active(project) == []

    def test_alias_resolution(self, tmp_path):
        project = make_project(tmp_path, {"gpu/aliased.py": (
            "from time import time as _now\n"
            "from numpy.random import default_rng\n"
            "stamp = _now()\n"
            "rng = default_rng()\n"
        )})
        assert rules_of(determinism_active(project)) == {
            "wall-clock", "unseeded-rng",
        }

    def test_non_critical_modules_not_scanned(self, tmp_path):
        project = make_project(tmp_path, {"analysis/free.py": (
            "import time\nstamp = time.time()\n"
        )})
        assert determinism_active(project) == []

    def test_parse_error_surfaces(self, tmp_path):
        project = make_project(tmp_path, {"gpu/broken.py": "def oops(:\n"})
        assert rules_of(determinism_active(project)) == {"parse-error"}


# --------------------------------------------------------------------- #
# Pragma round-trips.
# --------------------------------------------------------------------- #
class TestPragmas:
    def test_pragma_suppresses_with_reason(self, tmp_path):
        project = make_project(tmp_path, {"gpu/device.py": (
            "import time\n"
            "stamp = time.time()  # statics: allow[wall-clock] -- log stamp\n"
        )})
        active, suppressed = apply_pragmas(project, check_determinism(project))
        assert active == []
        assert len(suppressed) == 1
        assert suppressed[0].suppressed
        assert suppressed[0].reason == "log stamp"

    def test_pragma_requires_reason(self, tmp_path):
        project = make_project(tmp_path, {"gpu/device.py": (
            "import time\n"
            "stamp = time.time()  # statics: allow[wall-clock]\n"
        )})
        active, suppressed = apply_pragmas(project, check_determinism(project))
        assert suppressed == []
        assert rules_of(active) == {"wall-clock", "bad-pragma"}

    def test_pragma_unknown_rule_rejected(self, tmp_path):
        project = make_project(tmp_path, {"gpu/device.py": (
            "x = 1  # statics: allow[no-such-rule] -- whatever\n"
        )})
        active, _ = apply_pragmas(project, check_determinism(project))
        assert rules_of(active) == {"bad-pragma"}

    def test_pragma_wrong_rule_does_not_suppress(self, tmp_path):
        project = make_project(tmp_path, {"gpu/device.py": (
            "import time\n"
            "stamp = time.time()  # statics: allow[set-order] -- wrong rule\n"
        )})
        active, _ = apply_pragmas(project, check_determinism(project))
        assert rules_of(active) == {"wall-clock", "unused-pragma"}

    def test_unused_pragma_flagged(self, tmp_path):
        project = make_project(tmp_path, {"gpu/device.py": (
            "x = 1  # statics: allow[wall-clock] -- nothing here\n"
        )})
        active, _ = apply_pragmas(project, check_determinism(project))
        assert rules_of(active) == {"unused-pragma"}

    def test_pragma_text_inside_strings_ignored(self, tmp_path):
        project = make_project(tmp_path, {"gpu/device.py": (
            '"""Doc: write `# statics: allow[rule] -- reason` on the line."""\n'
            "MESSAGE = 'use # statics: allow[wall-clock] -- reason'\n"
        )})
        active, suppressed = apply_pragmas(project, check_determinism(project))
        assert active == []
        assert suppressed == []


# --------------------------------------------------------------------- #
# Cache-key completeness (real tree + mutations).
# --------------------------------------------------------------------- #
class TestCacheKey:
    def test_real_repo_clean(self):
        assert check_cache_key(Project(REPO_SRC)) == []

    def test_new_unkeyed_sweep_config_field_caught(self, tmp_path):
        project = copy_repo(tmp_path)
        rewrite(
            project, "experiments/sweep.py",
            "    max_pool_rebuilds: int = 8",
            "    max_pool_rebuilds: int = 8\n    surprise_knob: int = 0",
        )
        findings = check_cache_key(project)
        assert any(
            finding.rule == "cache-key" and "surprise_knob" in finding.message
            for finding in findings
        )

    def test_new_unkeyed_backend_config_field_caught(self, tmp_path):
        project = copy_repo(tmp_path)
        rewrite(
            project, "gpu/backend.py",
            "    engine: str | None = None",
            "    engine: str | None = None\n    new_noise_model: str = 'none'",
        )
        findings = check_cache_key(project)
        assert any(
            finding.rule == "cache-key" and "new_noise_model" in finding.message
            for finding in findings
        )

    def test_removed_field_leaves_stale_exemption(self, tmp_path):
        project = copy_repo(tmp_path)
        rewrite(
            project, "experiments/sweep.py",
            "    max_pool_rebuilds: int = 8\n", "",
        )
        findings = check_cache_key(project)
        assert any(
            finding.rule == "stale-exemption"
            and "max_pool_rebuilds" in finding.message
            for finding in findings
        )

    def test_key_shape_drift_caught(self, tmp_path):
        project = copy_repo(tmp_path)
        rewrite(
            project, "experiments/sweep.py",
            "sorted(payload.items())", "payload.items()",
        )
        assert "key-structure" in rules_of(check_cache_key(project))


# --------------------------------------------------------------------- #
# The hardened job_key.
# --------------------------------------------------------------------- #
class TestJobKeyHardening:
    def make_job(self, **overrides) -> ProfileJob:
        base = dict(
            job_id="j-0", kernel=kernel_spec("cb_gemm", 2048), runs=3,
            backend_seed=11, profiler_seed=12,
        )
        base.update(overrides)
        return ProfileJob(**base)

    def test_key_matches_published_algorithm(self):
        job = self.make_job()
        payload = asdict(job)
        payload.pop("job_id")
        expected = hashlib.sha256(
            f"{_CACHE_SCHEMA}:{sorted(payload.items())!r}".encode()
        ).hexdigest()
        assert job_key(job) == expected

    def test_key_digest_pinned(self):
        # Byte-identity guard: this exact digest is what schema-4 warm caches
        # hold for this job.  It may only change with a _CACHE_SCHEMA bump.
        assert job_key(self.make_job()) == (
            "204e975937008f46a7cf292abad4dbe33626d42c8693813a681eaaa5"
            "e0148d9f"
        )

    def test_key_ignores_job_id(self):
        assert job_key(self.make_job(job_id="a")) == job_key(
            self.make_job(job_id="b")
        )

    def test_float_payload_rejected(self):
        job = self.make_job(kernel=kernel_spec("cb_gemm", 1.5))
        with pytest.raises(TypeError, match="float"):
            job_key(job)

    def test_set_payload_rejected(self):
        job = self.make_job(kernel=kernel_spec("cb_gemm", frozenset({1})))
        with pytest.raises(TypeError, match="frozenset"):
            job_key(job)

    def test_tuple_and_str_payloads_accepted(self):
        job = self.make_job(
            kernel=kernel_spec("square_gemm", 6144, name="CB-6K-GEMM"),
            preceding=((kernel_spec("cb_gemm", 2048), 60),),
            profile_sections=("ssp",),
        )
        assert len(job_key(job)) == 64


# --------------------------------------------------------------------- #
# Engine parity (real tree + mutations).
# --------------------------------------------------------------------- #
class TestParity:
    def test_real_repo_clean(self):
        assert check_parity(Project(REPO_SRC)) == []

    def test_perturbed_kernel_body_caught(self, tmp_path):
        project = copy_repo(tmp_path)
        rewrite(
            project, "gpu/_fastcore_kernels.py",
            "    if duration <= 1e-12:", "    if duration <= 1e-11:",
        )
        findings = check_parity(project)
        assert any(
            finding.rule == "kernel-parity" and "idle_core" in finding.message
            for finding in findings
        )
        # The float drifted relative to the C mirror too.
        assert any(
            finding.rule == "c-parity" and "idle_core" in finding.message
            for finding in findings
        )

    def test_drifted_c_define_caught(self, tmp_path):
        project = copy_repo(tmp_path)
        rewrite(
            project, "gpu/_fastcore_cc.py",
            "#define P_MINFACT 30", "#define P_MINFACT 29",
        )
        findings = check_parity(project)
        assert any(
            finding.rule == "c-parity" and "P_MINFACT" in finding.message
            for finding in findings
        )

    def test_drifted_c_float_caught(self, tmp_path):
        project = copy_repo(tmp_path)
        rewrite(
            project, "gpu/_fastcore_cc.py",
            "if (launch_latency < 0.2e-6) launch_latency = 0.2e-6;",
            "if (launch_latency < 0.3e-6) launch_latency = 0.3e-6;",
        )
        findings = check_parity(project)
        assert any(
            finding.rule == "c-parity" and "sequence" in finding.message
            for finding in findings
        )

    def test_update_parity_records_deliberate_change(self, tmp_path):
        project = copy_repo(tmp_path)
        # Same floats, different AST: spell the AugAssign out.
        rewrite(
            project, "gpu/_fastcore_kernels.py",
            "    st[S_CTM] += duration",
            "    st[S_CTM] = st[S_CTM] + duration",
        )
        assert "kernel-parity" in rules_of(check_parity(project))
        write_manifest(project)
        assert check_parity(project) == []

    def test_missing_manifest_reported(self, tmp_path):
        project = copy_repo(tmp_path)
        (project.root / "statics" / "parity_manifest.json").unlink()
        assert "kernel-parity" in rules_of(check_parity(project))


# --------------------------------------------------------------------- #
# Cross-process contracts.
# --------------------------------------------------------------------- #
class TestContracts:
    def test_lambda_submission_caught(self, tmp_path):
        project = make_project(tmp_path, {"experiments/bad.py": (
            "def run(pool):\n"
            "    return pool.submit(lambda: 1)\n"
        )})
        assert rules_of(check_contracts(project)) == {"pickle-contract"}

    def test_local_def_submission_caught(self, tmp_path):
        project = make_project(tmp_path, {"experiments/bad.py": (
            "def run(executor, jobs):\n"
            "    def worker(job):\n"
            "        return job\n"
            "    return list(executor.map(worker, jobs))\n"
        )})
        assert rules_of(check_contracts(project)) == {"pickle-contract"}

    def test_lambda_in_fault_spec_caught(self, tmp_path):
        project = make_project(tmp_path, {"testing/bad.py": (
            "from repro.testing.faults import FaultSpec\n"
            "spec = FaultSpec(kind=lambda: 'crash')\n"
        )})
        assert rules_of(check_contracts(project)) == {"pickle-contract"}

    def test_module_level_callable_clean(self, tmp_path):
        project = make_project(tmp_path, {"experiments/good.py": (
            "def worker(job):\n"
            "    return job\n"
            "def run(pool, jobs):\n"
            "    return [pool.submit(worker, job) for job in jobs]\n"
        )})
        assert check_contracts(project) == []

    def test_real_repo_clean(self):
        assert check_contracts(Project(REPO_SRC)) == []


# --------------------------------------------------------------------- #
# CLI.
# --------------------------------------------------------------------- #
class TestCli:
    def test_repo_is_clean(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format_and_exit_codes(self, tmp_path, capsys):
        project = copy_repo(tmp_path)
        assert main(["--root", str(project.root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert len(payload["suppressed"]) == 8

        rewrite(
            project, "gpu/device.py",
            "from __future__ import annotations",
            "from __future__ import annotations\n"
            "import numpy as _np_statics_probe\n"
            "_BAD_RNG = _np_statics_probe.random.default_rng()",
        )
        assert main(["--root", str(project.root), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(
            finding["rule"] == "unseeded-rng"
            and finding["file"] == "gpu/device.py"
            for finding in payload["findings"]
        )

    def test_update_parity_command(self, tmp_path, capsys):
        project = copy_repo(tmp_path)
        (project.root / "statics" / "parity_manifest.json").unlink()
        assert main(["update-parity", "--root", str(project.root)]) == 0
        assert main(["--root", str(project.root)]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("wall-clock", "cache-key", "kernel-parity", "c-parity",
                     "pickle-contract"):
            assert rule in out

    def test_run_all_on_repo_clean(self):
        active, suppressed = run_all()
        assert active == []
        assert len(suppressed) == 8
