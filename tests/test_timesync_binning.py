"""Unit tests for CPU-GPU time sync, LOI extraction and execution-time binning."""

import numpy as np
import pytest

from repro.core.binning import ExecutionTimeBinner, histogram_of_durations
from repro.core.records import (
    DelayCalibration,
    ExecutionTiming,
    PowerReading,
    RunRecord,
    TimestampAnchor,
)
from repro.core.timesync import (
    ClockSynchronizer,
    extract_lois,
    extract_lois_unsynchronized,
    match_execution,
    synchronizer_for_run,
)

COUNTER_HZ = 100e6


def build_run(kernel_start=2.0, duration=400e-6, executions=3, gap=10e-6,
              epoch_offset=5.0, readings_at=()):
    """Build a RunRecord whose GPU ticks are offset from CPU time by a known epoch."""

    def ticks(cpu_time):
        return int(round((cpu_time + epoch_offset) * COUNTER_HZ))

    timing = []
    cursor = kernel_start
    for index in range(executions):
        timing.append(ExecutionTiming(index=index, cpu_start_s=cursor, cpu_end_s=cursor + duration))
        cursor += duration + gap
    readings = tuple(
        PowerReading(gpu_timestamp_ticks=ticks(t), window_s=1e-3, total_w=300.0 + i,
                     components={"xcd": 200.0, "iod": 60.0, "hbm": 40.0 + i})
        for i, t in enumerate(readings_at)
    )
    anchor_cpu = kernel_start - 1e-3
    anchor = TimestampAnchor(
        gpu_ticks=ticks(anchor_cpu - 10e-6),  # captured one way-delay before return
        cpu_time_after_s=anchor_cpu,
        round_trip_s=20e-6,
    )
    return RunRecord(
        run_index=0, kernel_name="k", readings=readings, executions=tuple(timing),
        anchor=anchor, logger_period_s=1e-3, counter_frequency_hz=COUNTER_HZ,
        pre_delay_s=0.0, metadata={"logger_start_cpu_s": kernel_start - 3e-3},
    )


class TestClockSynchronizer:
    def test_roundtrip_mapping(self):
        anchor = TimestampAnchor(gpu_ticks=1_000_000, cpu_time_after_s=5.0, round_trip_s=24e-6)
        calibration = DelayCalibration(mean_round_trip_s=24e-6, std_round_trip_s=1e-6, samples=8)
        sync = ClockSynchronizer(anchor, COUNTER_HZ, calibration)
        for cpu_time in (5.0, 5.001, 6.2):
            ticks = sync.gpu_ticks_of(cpu_time)
            assert sync.cpu_time_of(ticks) == pytest.approx(cpu_time, abs=2e-8)

    def test_anchor_capture_accounts_for_delay(self):
        anchor = TimestampAnchor(gpu_ticks=0, cpu_time_after_s=1.0, round_trip_s=30e-6)
        calibrated = ClockSynchronizer(
            anchor, COUNTER_HZ,
            DelayCalibration(mean_round_trip_s=30e-6, std_round_trip_s=0.0, samples=4),
        )
        uncalibrated = ClockSynchronizer(anchor, COUNTER_HZ, None)
        # Both estimates land inside the round trip window.
        for sync in (calibrated, uncalibrated):
            assert 1.0 - 30e-6 <= sync.anchor_capture_cpu_s <= 1.0

    def test_recovers_true_sample_times(self):
        run = build_run(readings_at=(2.0002, 2.0006))
        sync = synchronizer_for_run(
            run, DelayCalibration(mean_round_trip_s=20e-6, std_round_trip_s=0.0, samples=4)
        )
        recovered = [sync.cpu_time_of(r.gpu_timestamp_ticks) for r in run.readings]
        assert recovered[0] == pytest.approx(2.0002, abs=30e-6)
        assert recovered[1] == pytest.approx(2.0006, abs=30e-6)


class TestLOIExtraction:
    def test_match_execution(self):
        run = build_run()
        assert match_execution(run.executions, 2.0001).index == 0
        assert match_execution(run.executions, 1.0) is None

    def test_extract_lois_places_readings_in_right_executions(self):
        # Readings inside execution 0 and execution 2, one reading in idle gap.
        run = build_run(readings_at=(2.0002, 2.00041, 2.00095))
        lois = extract_lois(run, synchronizer_for_run(run))
        indices = sorted(loi.execution_index for loi in lois)
        assert indices == [0, 1, 2]

    def test_extract_lois_filter_by_execution(self):
        run = build_run(readings_at=(2.0002, 2.00095))
        lois = extract_lois(run, synchronizer_for_run(run), execution_indices=[2])
        assert len(lois) == 1
        assert lois[0].execution_index == 2

    def test_toi_fraction_within_bounds(self):
        run = build_run(readings_at=(2.0001, 2.0003, 2.00038))
        for loi in extract_lois(run, synchronizer_for_run(run)):
            assert 0.0 <= loi.toi_fraction <= 1.0
            assert loi.toi_s <= run.executions[0].duration_s * 1.01 + 1e-9

    def test_unsynchronized_extraction_misplaces_lois(self):
        # The naive index-based mapping uses the logger start, which is 3 ms
        # before the kernel; the first sample is then assumed to be at
        # start+1ms, well before the kernel -> different (wrong) attribution.
        run = build_run(readings_at=(2.0002, 2.0006, 2.0009))
        synced = extract_lois(run, synchronizer_for_run(run))
        naive = extract_lois_unsynchronized(run, float(run.metadata["logger_start_cpu_s"]))
        synced_pairs = {(l.execution_index, round(l.toi_s, 7)) for l in synced}
        naive_pairs = {(l.execution_index, round(l.toi_s, 7)) for l in naive}
        assert synced_pairs != naive_pairs


class TestBinning:
    def test_golden_runs_form_largest_cluster(self):
        values = [100.0, 101.0, 100.5, 99.8, 130.0, 99.9, 100.2, 150.0]
        result = ExecutionTimeBinner(0.05).bin(values)
        assert set(result.outlier_indices) == {4, 7}
        assert result.num_selected == 6

    def test_margin_respected(self):
        values = [100.0, 101.0, 103.0, 104.0, 110.0]
        result = ExecutionTimeBinner(0.02).bin(values)
        selected = result.selected_values()
        assert max(selected) <= min(selected) * 1.02 + 1e-9

    def test_all_within_margin_selects_everything(self):
        values = [100.0, 100.5, 100.9]
        result = ExecutionTimeBinner(0.05).bin(values)
        assert result.num_selected == 3
        assert result.num_outliers == 0
        assert result.selection_ratio == pytest.approx(1.0)

    def test_spread_of_selection(self):
        result = ExecutionTimeBinner(0.05).bin([100.0, 102.0, 104.0, 140.0])
        assert result.spread() <= 0.05 + 1e-9

    def test_single_value(self):
        result = ExecutionTimeBinner(0.02).bin([42.0])
        assert result.selected_indices == (0,)

    def test_rejects_empty_or_invalid(self):
        binner = ExecutionTimeBinner(0.05)
        with pytest.raises(ValueError):
            binner.bin([])
        with pytest.raises(ValueError):
            binner.bin([1.0, -2.0])
        with pytest.raises(ValueError):
            ExecutionTimeBinner(0.0)

    def test_bin_around_target_for_outlier_study(self):
        values = [100.0, 101.0, 125.0, 126.0, 99.5]
        result = ExecutionTimeBinner(0.05).bin_around(values, target_s=125.0)
        assert set(result.selected_indices) == {2, 3}

    def test_histogram(self):
        counts, edges = histogram_of_durations([1.0, 1.1, 2.0, 2.1], bins=2)
        assert counts.sum() == 4
        assert len(edges) == 3
        with pytest.raises(ValueError):
            histogram_of_durations([])

    def test_prefers_tighter_cluster_on_tie(self):
        # Two clusters of equal size; the tighter one should win.
        values = [100.0, 100.1, 200.0, 209.0]
        result = ExecutionTimeBinner(0.05).bin(values)
        assert set(result.selected_indices) == {0, 1}
