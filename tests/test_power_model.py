"""Unit tests for the per-component power model."""

import pytest

from repro.gpu.activity import KernelActivityDescriptor, PhaseSpec, XCDOccupancyMode
from repro.gpu.power_model import ComponentPower, OperatingPoint, PowerModel
from repro.gpu.spec import mi300x_spec


@pytest.fixture(scope="module")
def model():
    return PowerModel(mi300x_spec())


def descriptor(mode=XCDOccupancyMode.MATRIX, compute=0.7, llc=0.1, hbm=0.05, fabric=0.0):
    return KernelActivityDescriptor(
        name="k",
        base_duration_s=200e-6,
        xcd_mode=mode,
        compute_utilization=compute,
        llc_utilization=llc,
        hbm_utilization=hbm,
        fabric_utilization=fabric,
    )


class TestComponentPower:
    def test_total_is_sum(self):
        power = ComponentPower(xcd_w=10.0, iod_w=5.0, hbm_w=2.5)
        assert power.total_w == pytest.approx(17.5)

    def test_addition_and_scaling(self):
        a = ComponentPower(1.0, 2.0, 3.0)
        b = ComponentPower(4.0, 5.0, 6.0)
        assert (a + b).total_w == pytest.approx(21.0)
        assert a.scaled(2.0).xcd_w == pytest.approx(2.0)

    def test_as_dict_has_all_keys(self):
        d = ComponentPower(1.0, 2.0, 3.0).as_dict()
        assert set(d) == {"total", "xcd", "iod", "hbm"}


class TestPowerModel:
    def test_idle_power_matches_budget(self, model):
        idle = model.idle_power()
        budget = model.spec.power
        assert idle.total_w == pytest.approx(budget.idle_total_w)

    def test_kernel_power_exceeds_idle(self, model):
        point = OperatingPoint(frequency_ghz=2.1)
        power = model.kernel_power(descriptor(), point)
        assert power.total_w > model.idle_power().total_w

    def test_power_increases_with_frequency(self, model):
        low = model.kernel_power(descriptor(), OperatingPoint(frequency_ghz=1.9))
        high = model.kernel_power(descriptor(), OperatingPoint(frequency_ghz=2.25))
        assert high.total_w > low.total_w
        # Super-linear in frequency (voltage folded into the exponent).
        ratio = high.xcd_w / low.xcd_w
        assert ratio > (2.25 / 1.9)

    def test_hbm_power_does_not_scale_with_frequency(self, model):
        low = model.kernel_power(descriptor(), OperatingPoint(frequency_ghz=1.9))
        high = model.kernel_power(descriptor(), OperatingPoint(frequency_ghz=2.25))
        assert high.hbm_w == pytest.approx(low.hbm_w)

    def test_warmth_raises_dynamic_power(self, model):
        cold = model.kernel_power(descriptor(), OperatingPoint(2.1, warmth=0.0))
        warm = model.kernel_power(descriptor(), OperatingPoint(2.1, warmth=1.0))
        assert warm.total_w > cold.total_w

    def test_cold_caches_raise_hbm_power(self, model):
        kernel = KernelActivityDescriptor(
            name="k", base_duration_s=1e-4, compute_utilization=0.5,
            hbm_utilization=0.05, hbm_utilization_cold=0.5,
        )
        warm = model.kernel_power(kernel, OperatingPoint(2.1, cold_caches=False))
        cold = model.kernel_power(kernel, OperatingPoint(2.1, cold_caches=True))
        assert cold.hbm_w > warm.hbm_w
        assert cold.xcd_w == pytest.approx(warm.xcd_w)

    def test_matrix_kernels_have_large_xcd_floor(self, model):
        light = model.kernel_power(descriptor(compute=0.1), OperatingPoint(2.1))
        heavy = model.kernel_power(descriptor(compute=0.9), OperatingPoint(2.1))
        # Takeaway #4: XCD power is far from proportional to compute rate.
        assert light.xcd_w > 0.5 * heavy.xcd_w

    def test_stalled_mode_draws_less_xcd_than_matrix(self, model):
        matrix = model.kernel_power(descriptor(XCDOccupancyMode.MATRIX), OperatingPoint(2.1))
        stalled = model.kernel_power(
            descriptor(XCDOccupancyMode.STALLED, compute=0.05), OperatingPoint(2.1)
        )
        assert stalled.xcd_w < 0.6 * matrix.xcd_w

    def test_fabric_traffic_raises_iod_power(self, model):
        quiet = model.kernel_power(descriptor(fabric=0.0), OperatingPoint(2.1))
        busy = model.kernel_power(descriptor(fabric=0.9), OperatingPoint(2.1))
        assert busy.iod_w > quiet.iod_w

    def test_phase_scales_apply(self, model):
        base_phase = PhaseSpec(duration_fraction=1.0)
        hot_phase = PhaseSpec(duration_fraction=1.0, xcd_scale=1.2)
        base = model.kernel_power(descriptor(), OperatingPoint(2.1), base_phase)
        hot = model.kernel_power(descriptor(), OperatingPoint(2.1), hot_phase)
        assert hot.xcd_w > base.xcd_w

    def test_invalid_frequency_rejected(self, model):
        with pytest.raises(ValueError):
            model.frequency_power_scale(0.0)

    def test_power_limited_frequency_within_dvfs_range(self, model):
        dvfs = model.spec.dvfs
        frequency = model.power_limited_frequency(descriptor(compute=0.95, llc=0.3, hbm=0.3))
        assert dvfs.sustained_frequency_ghz <= frequency <= dvfs.boost_frequency_ghz

    def test_light_kernel_not_power_limited(self, model):
        assert not model.is_power_limited(descriptor(compute=0.1, llc=0.01, hbm=0.01))

    def test_estimate_peak_power_uses_boost(self, model):
        k = descriptor()
        peak = model.estimate_peak_power(k)
        nominal = model.kernel_power(k, OperatingPoint(model.spec.dvfs.nominal_frequency_ghz))
        assert peak.total_w > nominal.total_w
