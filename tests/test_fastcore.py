"""Engine-selection matrix, provider fallbacks and compiled-core plumbing.

Covers the fastcore resolution rules (explicit argument > ``REPRO_ENGINE``
env var > auto), graceful fallback when no compiled provider is available
(simulated by pinning ``REPRO_FASTCORE_PROVIDER=none`` / patching out the
Numba import probe), the one-time self-check failure path (single warning,
auto falls back to vectorized), the ``BackendConfig`` engine validation and
deprecation shim, and the ``relax_span`` zero/negative-duration contract.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.gpu import fastcore
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.device import SimulatedGPU
from repro.gpu.spec import mi300x_spec
from repro.gpu.thermal import ThermalModel, ThermalSpec
from repro.kernels.workloads import cb_gemm

SPEC = mi300x_spec()


@pytest.fixture()
def clean_fastcore(monkeypatch):
    """Reset the cached provider resolution around each test."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_FASTCORE_PROVIDER", raising=False)
    fastcore._reset_for_tests()
    yield monkeypatch
    fastcore._reset_for_tests()


# --------------------------------------------------------------------- #
# Engine resolution precedence.
# --------------------------------------------------------------------- #
class TestResolveEngine:
    def test_explicit_engine_wins(self, clean_fastcore):
        assert fastcore.resolve_engine("vectorized") == "vectorized"
        assert fastcore.resolve_engine("reference") == "reference"

    def test_vectorized_shim_maps_to_engines(self, clean_fastcore):
        assert fastcore.resolve_engine(None, True) == "vectorized"
        assert fastcore.resolve_engine(None, False) == "reference"

    def test_engine_and_vectorized_together_raise(self, clean_fastcore):
        with pytest.raises(ValueError, match="not both"):
            fastcore.resolve_engine("vectorized", True)

    def test_unknown_engine_lists_valid_engines(self, clean_fastcore):
        with pytest.raises(ValueError, match="compiled.*vectorized.*reference"):
            fastcore.resolve_engine("turbo")

    def test_env_var_overrides_auto(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_ENGINE", "reference")
        assert fastcore.resolve_engine() == "reference"
        clean_fastcore.setenv("REPRO_ENGINE", "vectorized")
        assert fastcore.resolve_engine() == "vectorized"

    def test_env_var_invalid_value_raises(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_ENGINE", "warp-speed")
        with pytest.raises(ValueError, match="warp-speed"):
            fastcore.resolve_engine()

    def test_explicit_argument_beats_env_var(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_ENGINE", "reference")
        assert fastcore.resolve_engine("vectorized") == "vectorized"

    def test_auto_prefers_compiled_when_available(self, clean_fastcore):
        if not fastcore.available():
            pytest.skip("no compiled-kernel provider in this environment")
        assert fastcore.resolve_engine() == "compiled"
        assert fastcore.provider_name() in ("numba", "cc")


# --------------------------------------------------------------------- #
# Provider-absent fallback.
# --------------------------------------------------------------------- #
class TestProviderFallback:
    def test_provider_none_disables_compiled_tier(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_FASTCORE_PROVIDER", "none")
        assert fastcore.kernels() is None
        assert not fastcore.available()
        # Auto selection falls back silently -- no warning for a merely
        # absent provider.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fastcore.resolve_engine() == "vectorized"

    def test_numba_absent_auto_skips_to_next_provider(self, clean_fastcore):
        clean_fastcore.setattr(fastcore, "_numba_importable", lambda: False)
        bundle = fastcore.kernels()
        # Whatever auto resolves to, it must not claim the numba provider.
        assert bundle is None or bundle.name != "numba"

    def test_numba_provider_requested_but_absent(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_FASTCORE_PROVIDER", "numba")
        clean_fastcore.setattr(fastcore, "_numba_importable", lambda: False)
        assert fastcore.kernels() is None
        assert fastcore.resolve_engine() == "vectorized"

    def test_explicit_compiled_unavailable_warns_once(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_FASTCORE_PROVIDER", "none")
        with pytest.warns(RuntimeWarning, match="falling back to the vectorized"):
            assert fastcore.resolve_engine("compiled") == "vectorized"
        # Second request: silent (the warning is one-time).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fastcore.resolve_engine("compiled") == "vectorized"

    def test_device_construction_survives_missing_provider(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_FASTCORE_PROVIDER", "none")
        with pytest.warns(RuntimeWarning):
            device = SimulatedGPU(SPEC, seed=1, engine="compiled")
        assert device.engine == "vectorized"
        device.idle(1e-3)
        assert device.now_s() == pytest.approx(1e-3)

    def test_backend_auto_resolves_to_vectorized(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_FASTCORE_PROVIDER", "none")
        backend = SimulatedDeviceBackend(spec=SPEC, seed=2, config=BackendConfig())
        assert backend.device.engine == "vectorized"


# --------------------------------------------------------------------- #
# Self-check failure path.
# --------------------------------------------------------------------- #
class TestSelfCheckFailure:
    def test_failed_self_check_warns_once_and_falls_back(self, clean_fastcore):
        if fastcore.provider_request() == "none":
            pytest.skip("provider explicitly disabled")
        clean_fastcore.setattr(
            fastcore, "self_check", lambda bundle: "injected mismatch"
        )
        with pytest.warns(RuntimeWarning, match="failed its self-check"):
            assert fastcore.kernels() is None
        assert fastcore.resolve_engine() == "vectorized"
        # The resolution is cached: no second warning, no second self-check.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fastcore.kernels() is None

    def test_self_check_catches_a_corrupted_provider(self, clean_fastcore):
        bundle = fastcore.kernels()
        if bundle is None:
            pytest.skip("no compiled-kernel provider in this environment")

        def corrupted_idle(st, pp, duration, record, seg, ev, lens):
            rc = bundle.idle(st, pp, duration, record, seg, ev, lens)
            st[1] += 1e-9  # a one-ulp-scale warmth nudge must be caught
            return rc

        corrupted = fastcore.KernelBundle(
            "corrupted", corrupted_idle, bundle.execute, bundle.sequence
        )
        failure = fastcore.self_check(corrupted)
        assert failure is not None and "mismatch" in failure

    def test_self_check_passes_for_active_provider(self, clean_fastcore):
        bundle = fastcore.kernels()
        if bundle is None:
            pytest.skip("no compiled-kernel provider in this environment")
        assert fastcore.self_check(bundle) is None


# --------------------------------------------------------------------- #
# The python provider (uncompiled kernel bodies) stays in lockstep.
# --------------------------------------------------------------------- #
class TestPythonProvider:
    def test_python_provider_runs_the_device(self, clean_fastcore):
        clean_fastcore.setenv("REPRO_FASTCORE_PROVIDER", "python")
        bundle = fastcore.kernels()
        assert bundle is not None and bundle.name == "python"
        compiled = SimulatedGPU(SPEC, seed=7, engine="compiled")
        vectorized = SimulatedGPU(SPEC, seed=7, engine="vectorized")
        short = cb_gemm(1024).activity_descriptor(SPEC)
        for device in (compiled, vectorized):
            device.start_recording()
            device.idle(1.2e-3)
            device.execute_kernel(short)
            device.idle(9e-3)
            device.execute_kernel(short)
        a = compiled.stop_recording()
        b = vectorized.stop_recording()
        assert np.array_equal(a.starts_s, b.starts_s)
        assert np.array_equal(a.powers, b.powers)
        assert compiled.executions() == vectorized.executions()
        assert compiled.now_s() == vectorized.now_s()


# --------------------------------------------------------------------- #
# BackendConfig engine validation + deprecation shim.
# --------------------------------------------------------------------- #
class TestBackendConfigEngine:
    def test_unknown_engine_rejected_with_valid_list(self, clean_fastcore):
        with pytest.raises(ValueError, match="compiled.*vectorized.*reference"):
            BackendConfig(engine="hyperspeed").validate()

    def test_engine_and_vectorized_both_set_rejected(self, clean_fastcore):
        with pytest.raises(ValueError, match="not both"):
            BackendConfig(engine="vectorized", vectorized=True).validate()

    def test_vectorized_shim_still_pins_engines(self, clean_fastcore):
        assert BackendConfig(vectorized=True).resolved_engine() == "vectorized"
        assert BackendConfig(vectorized=False).resolved_engine() == "reference"

    def test_legacy_boolean_constructor_path_still_works(self, clean_fastcore):
        backend = SimulatedDeviceBackend(
            spec=SPEC, seed=3, config=BackendConfig(vectorized=False)
        )
        assert backend.device.engine == "reference"
        assert not backend.device.vectorized

    def test_direct_device_vectorized_flag_never_auto_selects(self, clean_fastcore):
        # Pre-engine constructor callers must keep their exact engine.
        assert SimulatedGPU(SPEC, seed=1, vectorized=True).engine == "vectorized"
        assert SimulatedGPU(SPEC, seed=1, vectorized=False).engine == "reference"

    def test_auto_accepted_as_explicit_engine_string(self, clean_fastcore):
        config = BackendConfig(engine="auto")
        config.validate()
        assert config.resolved_engine() in ("compiled", "vectorized")


# --------------------------------------------------------------------- #
# relax_span contract (satellite bugfix).
# --------------------------------------------------------------------- #
class TestRelaxSpan:
    def test_negative_duration_raises(self):
        model = ThermalModel(ThermalSpec(initial_warmth=0.4))
        with pytest.raises(ValueError, match="negative"):
            model.relax_span(-1e-9, active=False)

    def test_zero_duration_is_a_noop(self):
        model = ThermalModel(ThermalSpec(initial_warmth=0.4))
        assert model.relax_span(0.0, active=True) == 0.4
        assert model.warmth == 0.4
        assert model.relax_span(0.0, active=False) == 0.4
        assert model.warmth == 0.4

    def test_matches_step_for_positive_durations(self):
        spanned = ThermalModel(ThermalSpec(initial_warmth=0.25))
        stepped = ThermalModel(ThermalSpec(initial_warmth=0.25))
        for duration, active in ((1e-4, True), (3.7e-3, False), (0.5e-3, True)):
            assert spanned.relax_span(duration, active) == stepped.step(duration, active)

    def test_compiled_idle_kernel_treats_zero_span_as_noop(self, clean_fastcore):
        bundle = fastcore.kernels()
        if bundle is None:
            pytest.skip("no compiled-kernel provider in this environment")
        from repro.gpu import _fastcore_kernels as K

        st, pp, _, _ = fastcore._scenario_params()
        st[K.S_WARMTH] = 0.37
        seg = np.zeros((8, 5))
        ev = np.zeros((8, 4))
        lens = np.zeros(2, dtype=np.int64)
        rc = bundle.idle(st, pp, 0.0, 1, seg, ev, lens)
        assert rc == 0
        assert st[K.S_WARMTH] == 0.37
        assert st[K.S_NOW] == 0.0
        assert int(lens[0]) == 0 and int(lens[1]) == 0
