"""Unit tests for reporting, ASCII rendering and CSV/JSON export."""

import csv
import json

import pytest

from repro.core.profile import FineGrainProfile, ProfileKind, ProfilePoint
from repro.core.report import (
    comparative_report,
    format_duration,
    format_table,
    profile_summary_row,
)
from repro.viz.ascii import render_bar_chart, render_profile, render_series
from repro.viz.export import profile_to_csv, profile_to_json, rows_to_csv, rows_to_json


@pytest.fixture()
def profile():
    points = tuple(
        ProfilePoint(time_s=i * 1e-5, powers_w={"total": 100.0 + i, "xcd": 70.0 + i})
        for i in range(20)
    )
    return FineGrainProfile("CB-4K-GEMM", ProfileKind.SSP, points, 180e-6)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_table_rejects_mismatched_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_duration_units(self):
        assert format_duration(30e-6) == "30.0us"
        assert format_duration(1.5e-3) == "1.50ms"
        assert format_duration(2.0) == "2.000s"
        with pytest.raises(ValueError):
            format_duration(-1.0)

    def test_profile_summary_row(self, profile):
        row = profile_summary_row(profile)
        assert row["kernel"] == "CB-4K-GEMM"
        assert row["kind"] == "ssp"
        assert row["total_w"] > 0

    def test_comparative_report(self, profile):
        rows = [profile_summary_row(profile), profile_summary_row(profile)]
        text = comparative_report(rows)
        assert "CB-4K-GEMM" in text
        with pytest.raises(ValueError):
            comparative_report([])


class TestAsciiRendering:
    def test_render_series_dimensions(self):
        chart = render_series([0, 1, 2], [10, 20, 15], width=40, height=8)
        assert len(chart.splitlines()) == 8 + 3

    def test_render_series_validation(self):
        with pytest.raises(ValueError):
            render_series([1, 2], [1], width=40, height=8)
        with pytest.raises(ValueError):
            render_series([1], [1], width=4, height=2)
        assert render_series([], []) == "(empty series)"

    def test_render_profile(self, profile):
        text = render_profile(profile, time_unit="us")
        assert "CB-4K-GEMM" in text
        assert "20 points" in text

    def test_render_profile_empty(self):
        empty = FineGrainProfile("k", ProfileKind.SSP, (), 1e-4)
        assert "empty" in render_profile(empty)

    def test_render_profile_bad_unit(self, profile):
        with pytest.raises(ValueError):
            render_profile(profile, time_unit="h")

    def test_render_bar_chart(self):
        chart = render_bar_chart({"CB-8K-GEMM": 580.0, "MB-8K-GEMV": 300.0})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_render_bar_chart_validation(self):
        assert render_bar_chart({}) == "(no values)"
        with pytest.raises(ValueError):
            render_bar_chart({"a": 0.0})


class TestExport:
    def test_rows_to_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5, "c": "x"}]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["a"] == "1"
        assert loaded[1]["c"] == "x"

    def test_rows_to_json_roundtrip(self, tmp_path):
        rows = [{"a": 1}, {"a": 2}]
        path = rows_to_json(rows, tmp_path / "out.json")
        assert json.loads(path.read_text()) == [{"a": 1}, {"a": 2}]

    def test_profile_to_csv_and_json(self, profile, tmp_path):
        csv_path = profile_to_csv(profile, tmp_path / "profile.csv")
        json_path = profile_to_json(profile, tmp_path / "profile.json")
        assert csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["kernel"] == "CB-4K-GEMM"
        assert len(payload["points"]) == 20

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv([], tmp_path / "x.csv")
        empty = FineGrainProfile("k", ProfileKind.SSP, (), 1e-4)
        with pytest.raises(ValueError):
            profile_to_csv(empty, tmp_path / "x.csv")
