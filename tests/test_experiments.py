"""Integration tests over the experiment drivers (reduced run budgets).

Each paper figure/table driver is exercised once at a small scale and its
qualitative claims (who wins, which direction, where the crossovers are) are
asserted.  The benchmark harnesses run the same drivers at the paper's scale.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    default_scale,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_sampler_ablation,
    run_table1,
    run_table2,
)

#: Very small budgets so the whole module stays test-suite friendly.
TINY = ExperimentScale(
    name="tiny",
    gemm_runs=40,
    gemv_runs=100,
    collective_runs=40,
    interleaved_runs=30,
    methodology_runs=60,
    reduced_runs=20,
)


@pytest.fixture(scope="module")
def fig7_result():
    return run_fig7(scale=TINY, seed=107)


@pytest.fixture(scope="module")
def fig9_result():
    return run_fig9(scale=TINY, seed=109)


class TestScales:
    def test_default_scale_is_fast(self, monkeypatch):
        monkeypatch.delenv("FINGRAV_SCALE", raising=False)
        assert default_scale().name == "fast"
        monkeypatch.setenv("FINGRAV_SCALE", "paper")
        assert default_scale().name == "paper"

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale("bad", 0, 1, 1, 1, 1, 1).validate()


class TestFig5:
    def test_methodology_claims(self):
        result = run_fig5(scale=TINY, seed=105)
        summary = result.summary()
        assert summary["sync_captures_ramp"]
        assert summary["binning_tightens_profile"]
        assert result.differentiation_matters()
        assert result.resilient_to_fewer_runs()


class TestFig6:
    def test_cb8k_shape_and_spread(self):
        result = run_fig6(scale=TINY, seed=106)
        assert result.throttling_detected
        assert result.ssp_executions > 4
        assert result.rise_then_fall_then_rise()
        assert 0.05 < result.sse_vs_ssp_error < 0.35
        assert len(result.rows()) > 10


class TestFig7:
    def test_component_claims(self, fig7_result):
        claims = fig7_result.all_claims()
        assert claims["cb_above_mb_total"]
        assert claims["cb_above_mb_xcd"]
        assert claims["mb8k_stresses_iod"]
        assert claims["cb8k_highest_hbm"]
        assert claims["xcd_similar_across_cb"]
        assert claims["gemv_total_drops_with_size"]

    def test_error_ordering_matches_paper(self, fig7_result):
        errors = fig7_result.errors
        cb2k = errors.record_for("CB-2K-GEMM").power_error
        cb8k = errors.record_for("CB-8K-GEMM").power_error
        assert cb2k > cb8k
        assert errors.max_error() > 0.4

    def test_proportionality_gap(self, fig7_result):
        gap = fig7_result.proportionality.xcd_proportionality_gap("CB-2K-GEMM", "CB-8K-GEMM")
        assert gap > 1.2


class TestFig8:
    def test_cb2k_gradual_rise_and_large_error(self):
        result = run_fig8(scale=TINY, seed=108)
        assert result.gradual_rise()
        assert result.sse_vs_ssp_error > 0.4
        assert result.ssp_executions >= 25


class TestFig9:
    def test_interleaving_expectations(self, fig9_result):
        assert fig9_result.short_kernels_affected_long_not()
        rows = fig9_result.rows()
        assert len(rows) == 5

    def test_directions_match_paper(self, fig9_result):
        assert fig9_result.measurement("MB->2K").direction() == "lower"
        assert fig9_result.measurement("CB->2K").direction() == "higher"
        assert fig9_result.measurement("CB->4K gemv").direction() == "higher"


class TestFig10:
    def test_collective_claims(self):
        result = run_fig10(scale=TINY, seed=110)
        claims = result.all_claims()
        assert claims["gemm_has_highest_xcd"]
        assert claims["bb_total_between_lb_and_gemm"]
        assert claims["bb_has_higher_iod_and_hbm"]
        assert claims["bb_iod_exceeds_gemm_iod"]
        assert len(result.latency_bound_names) == 4
        assert len(result.bandwidth_bound_names) == 4


class TestTable1:
    def test_guidance_regeneration(self):
        result = run_table1(scale=TINY, seed=101, runs=40)
        rows = result.rows()
        assert len(rows) == 4
        assert result.recommendations_are_sufficient()
        assert result.shorter_kernels_need_more_runs()
        assert len(result.paper_rows()) == 4


class TestTable2:
    def test_all_takeaways_hold(self, fig7_result, fig9_result):
        result = run_table2(scale=TINY, fig7=fig7_result, fig9=fig9_result)
        assert len(result.takeaways) == 5
        assert result.all_hold(), [t.to_row() for t in result.takeaways if not t.holds]


class TestAblations:
    def test_sampler_ablation_collapses_split(self):
        result = run_sampler_ablation(scale=TINY, runs=40)
        assert result.averaging_window_causes_split()
