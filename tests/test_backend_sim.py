"""Unit/integration tests for the simulated profiling backend."""

import pytest

from repro.core.records import RunRecord
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.kernels.workloads import cb_gemm, mb_gemv


@pytest.fixture()
def kernel():
    return cb_gemm(4096)


class TestBackendBasics:
    def test_protocol_properties(self, backend):
        assert backend.power_sample_period_s == pytest.approx(1e-3)
        assert backend.counter_frequency_hz == pytest.approx(100e6)

    def test_kernel_name_from_ai_kernel(self, backend, kernel):
        assert backend.kernel_name(kernel) == "CB-4K-GEMM"

    def test_kernel_name_from_descriptor(self, backend, kernel, spec):
        descriptor = kernel.activity_descriptor(spec)
        assert backend.kernel_name(descriptor) == "CB-4K-GEMM"

    def test_unknown_kernel_handle_rejected(self, backend):
        with pytest.raises(TypeError):
            backend.kernel_name(42)

    def test_invalid_sampler_rejected(self):
        with pytest.raises(ValueError):
            BackendConfig(sampler="bogus").validate()


class TestTimeKernel:
    def test_returns_requested_number_of_durations(self, backend, kernel):
        durations = backend.time_kernel(kernel, executions=5)
        assert len(durations) == 5
        assert all(d > 0 for d in durations)

    def test_warm_executions_faster_than_cold(self, backend, kernel):
        durations = backend.time_kernel(kernel, executions=6)
        assert min(durations[3:]) < durations[0]

    def test_rejects_zero_executions(self, backend, kernel):
        with pytest.raises(ValueError):
            backend.time_kernel(kernel, executions=0)


class TestCalibration:
    def test_calibration_statistics(self, backend):
        calibration = backend.calibrate_read_delay(samples=16)
        assert calibration.samples == 16
        assert calibration.mean_round_trip_s > 0
        assert calibration.one_way_delay_s == pytest.approx(
            calibration.mean_round_trip_s / 2
        )

    def test_rejects_zero_samples(self, backend):
        with pytest.raises(ValueError):
            backend.calibrate_read_delay(samples=0)


class TestRun:
    def test_run_record_structure(self, backend, kernel):
        record = backend.run(kernel, executions=4, pre_delay_s=0.5e-3, run_index=3)
        assert isinstance(record, RunRecord)
        assert record.run_index == 3
        assert record.kernel_name == "CB-4K-GEMM"
        assert record.num_executions == 4
        assert len(record.readings) > 3
        assert record.logger_period_s == pytest.approx(1e-3)
        assert "logger_start_cpu_s" in record.metadata

    def test_execution_indices_sequential(self, backend, kernel):
        record = backend.run(kernel, executions=5, pre_delay_s=0.0)
        assert [e.index for e in record.executions] == [0, 1, 2, 3, 4]

    def test_readings_have_component_breakdown(self, backend, kernel):
        record = backend.run(kernel, executions=4, pre_delay_s=0.0)
        for reading in record.readings:
            assert reading.has_component("xcd")
            assert reading.has_component("iod")
            assert reading.has_component("hbm")
            parts = sum(reading.component(c) for c in ("xcd", "iod", "hbm"))
            assert reading.total_w == pytest.approx(parts, rel=1e-6)

    def test_anchor_read_before_executions(self, backend, kernel):
        record = backend.run(kernel, executions=4, pre_delay_s=0.0)
        assert record.anchor.cpu_time_after_s < record.first_execution.cpu_start_s

    def test_pre_delay_shifts_kernel_start(self, backend, kernel):
        no_delay = backend.run(kernel, executions=2, pre_delay_s=0.0)
        gap_no_delay = no_delay.first_execution.cpu_start_s - no_delay.anchor.cpu_time_after_s
        delayed = backend.run(kernel, executions=2, pre_delay_s=1.5e-3)
        gap_delayed = delayed.first_execution.cpu_start_s - delayed.anchor.cpu_time_after_s
        assert gap_delayed > gap_no_delay + 1.0e-3

    def test_preceding_kernels_recorded_separately(self, backend, kernel):
        gemv = mb_gemv(4096)
        record = backend.run(
            kernel, executions=2, pre_delay_s=0.0, preceding=[(gemv, 3)]
        )
        assert len(record.preceding_executions) == 3
        assert all(e.kernel_name == "MB-4K-GEMV" for e in record.preceding_executions)
        # Preceding work finishes before the kernel of interest starts.
        assert record.preceding_executions[-1].cpu_end_s <= record.first_execution.cpu_start_s

    def test_rejects_invalid_arguments(self, backend, kernel):
        with pytest.raises(ValueError):
            backend.run(kernel, executions=0, pre_delay_s=0.0)
        with pytest.raises(ValueError):
            backend.run(kernel, executions=1, pre_delay_s=-1.0)

    def test_coarse_sampler_has_much_longer_period(self, kernel, spec):
        coarse = SimulatedDeviceBackend(
            spec=spec, seed=5, config=BackendConfig(sampler="coarse")
        )
        record = coarse.run(kernel, executions=4, pre_delay_s=0.0)
        fine = SimulatedDeviceBackend(spec=spec, seed=5)
        fine_record = fine.run(kernel, executions=4, pre_delay_s=0.0)
        assert record.logger_period_s >= 10 * fine_record.logger_period_s
        # Readings per second of recording are far sparser for the coarse sampler.
        coarse_span = record.metadata["logger_stop_cpu_s"] - record.metadata["logger_start_cpu_s"]
        fine_span = (
            fine_record.metadata["logger_stop_cpu_s"] - fine_record.metadata["logger_start_cpu_s"]
        )
        assert len(record.readings) / coarse_span < len(fine_record.readings) / fine_span

    def test_instantaneous_sampler_zero_window(self, kernel, spec):
        instant = SimulatedDeviceBackend(
            spec=spec, seed=5, config=BackendConfig(sampler="instantaneous")
        )
        record = instant.run(kernel, executions=2, pre_delay_s=0.0)
        assert all(reading.window_s == 0.0 for reading in record.readings)
