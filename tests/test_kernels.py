"""Unit tests for the operator substrate: roofline, traffic, GEMM/GEMV, collectives."""

import pytest

from repro.gpu.activity import XCDOccupancyMode
from repro.kernels.base import KernelSummary
from repro.kernels.collectives import (
    CollectiveOp,
    TransferRegime,
    all_gather,
    all_reduce,
    format_size,
)
from repro.kernels.gemm import (
    GemmKernel,
    GemmShape,
    GemvKernel,
    matrix_efficiency,
    square_gemm,
    streaming_bandwidth_efficiency,
)
from repro.kernels.library import RCCLLikeLibrary, RocBLASLikeLibrary
from repro.kernels.memory_traffic import MemoryTrafficModel
from repro.kernels.roofline import Boundedness, MachineBalance, arithmetic_intensity
from repro.kernels.workloads import (
    cb_gemms,
    collective_suite,
    gemm_suite,
    interleaving_scenarios,
    mb_gemvs,
)


class TestRoofline:
    def test_arithmetic_intensity(self):
        assert arithmetic_intensity(100.0, 50.0) == pytest.approx(2.0)
        assert arithmetic_intensity(0.0, 0.0) == 0.0
        assert arithmetic_intensity(1.0, 0.0) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_intensity(-1.0, 1.0)

    def test_machine_balance_from_spec(self, spec):
        balance = MachineBalance.from_spec(spec)
        assert balance.op_to_byte == pytest.approx(spec.machine_op_to_byte)

    def test_classification_against_balance(self, spec):
        balance = MachineBalance.from_spec(spec)
        assert balance.classify(1e15, 1e9) is Boundedness.COMPUTE
        assert balance.classify(1e9, 1e9) is Boundedness.MEMORY

    def test_roofline_time_takes_max(self, spec):
        balance = MachineBalance.from_spec(spec)
        compute_only = balance.compute_time_s(1e12, 0.5)
        memory_only = balance.hbm_time_s(1e9, 0.5)
        assert balance.roofline_time_s(1e12, 1e9, 0.5, 0.5) == pytest.approx(
            max(compute_only, memory_only)
        )

    def test_bad_efficiency_rejected(self, spec):
        balance = MachineBalance.from_spec(spec)
        with pytest.raises(ValueError):
            balance.compute_time_s(1e12, 0.0)


class TestMemoryTraffic:
    def test_cache_resident_kernel_has_little_hbm_traffic(self, spec):
        model = MemoryTrafficModel(spec)
        estimate = model.estimate(operand_bytes=50e6, output_bytes=10e6)
        assert estimate.hbm_bytes_warm < 0.2 * estimate.hbm_bytes_cold

    def test_spilling_kernel_keeps_hbm_traffic(self, spec):
        model = MemoryTrafficModel(spec)
        working_set = spec.llc_capacity_bytes + spec.l2_capacity_bytes + 200e6
        estimate = model.estimate(operand_bytes=working_set, output_bytes=50e6)
        assert estimate.hbm_bytes_warm > 200e6

    def test_cold_always_at_least_warm(self, spec):
        model = MemoryTrafficModel(spec)
        for operand in (1e6, 50e6, 500e6, 2e9):
            estimate = model.estimate(operand_bytes=operand, output_bytes=operand * 0.3)
            assert estimate.hbm_bytes_cold >= estimate.hbm_bytes_warm

    def test_fits_predicates(self, spec):
        model = MemoryTrafficModel(spec)
        assert model.fits_in_l2(10e6)
        assert not model.fits_in_l2(100e6)
        assert model.fits_in_llc(200e6)
        assert not model.fits_in_llc(500e6)

    def test_invalid_output_rejected(self, spec):
        model = MemoryTrafficModel(spec)
        with pytest.raises(ValueError):
            model.estimate(operand_bytes=10.0, output_bytes=20.0)


class TestGemmShape:
    def test_flops_and_bytes(self):
        shape = GemmShape(m=2, n=3, k=4, dtype_bytes=2)
        assert shape.flops == pytest.approx(48)
        assert shape.operand_bytes == pytest.approx((8 + 12 + 6) * 2)
        assert shape.output_bytes == pytest.approx(12)

    def test_gemv_detection(self):
        assert GemmShape(m=128, n=1, k=128).is_gemv
        assert not GemmShape(m=128, n=128, k=128).is_gemv

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GemmShape(m=0, n=1, k=1)


class TestEfficiencyCurves:
    def test_matrix_efficiency_anchors(self):
        assert matrix_efficiency(2 * 2048 ** 3) == pytest.approx(0.42, abs=0.02)
        assert matrix_efficiency(2 * 4096 ** 3) == pytest.approx(0.64, abs=0.02)
        assert matrix_efficiency(2 * 8192 ** 3) == pytest.approx(0.75, abs=0.02)

    def test_matrix_efficiency_monotone_and_bounded(self):
        sizes = [256, 512, 1024, 2048, 4096, 8192, 16384]
        values = [matrix_efficiency(2.0 * s ** 3) for s in sizes]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
        assert all(0.2 <= v <= 0.8 for v in values)

    def test_streaming_efficiency_grows_with_size(self):
        assert streaming_bandwidth_efficiency(1e6) < streaming_bandwidth_efficiency(1e8)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            matrix_efficiency(0)
        with pytest.raises(ValueError):
            streaming_bandwidth_efficiency(-1)


class TestGemmKernels:
    def test_square_gemm_is_compute_bound(self, spec):
        for size in (2048, 4096, 8192):
            assert square_gemm(size).boundedness(spec) is Boundedness.COMPUTE

    def test_gemv_is_memory_bound(self, spec):
        for size in (2048, 4096, 8192):
            assert GemvKernel(size).boundedness(spec) is Boundedness.MEMORY

    def test_gemm_descriptor_durations_match_paper_ranges(self, spec):
        assert 25e-6 <= square_gemm(2048).activity_descriptor(spec).base_duration_s <= 50e-6
        assert 50e-6 <= square_gemm(4096).activity_descriptor(spec).base_duration_s <= 200e-6
        assert square_gemm(8192).activity_descriptor(spec).base_duration_s > 1e-3

    def test_gemm_uses_matrix_engines_gemv_stalls(self, spec):
        assert square_gemm(4096).activity_descriptor(spec).xcd_mode is XCDOccupancyMode.MATRIX
        assert GemvKernel(4096).activity_descriptor(spec).xcd_mode is XCDOccupancyMode.STALLED

    def test_cb8k_has_highest_warm_hbm_utilization(self, spec):
        hbm = {
            size: square_gemm(size).activity_descriptor(spec).hbm_utilization
            for size in (2048, 4096, 8192)
        }
        assert hbm[8192] == max(hbm.values())

    def test_gemv8k_stresses_llc_most(self, spec):
        llc = {size: GemvKernel(size).activity_descriptor(spec).llc_utilization
               for size in (2048, 4096, 8192)}
        assert llc[8192] > llc[4096] > llc[2048]

    def test_efficiency_override(self, spec):
        kernel = GemmKernel(m=4096, n=4096, k=4096, efficiency=0.5)
        assert kernel.efficiency() == pytest.approx(0.5)

    def test_kernel_summary(self, spec):
        summary = KernelSummary.from_kernel(square_gemm(4096), spec)
        assert summary.boundedness is Boundedness.COMPUTE
        assert summary.base_duration_s > 0


class TestCollectives:
    def test_latency_vs_bandwidth_classification(self):
        assert all_gather(64 * 1024).regime() is TransferRegime.LATENCY_BOUND
        assert all_gather(1024 ** 3).regime() is TransferRegime.BANDWIDTH_BOUND
        assert all_reduce(128 * 1024).is_latency_bound()
        assert not all_reduce(512 * 1024 ** 2).is_latency_bound()

    def test_all_reduce_has_two_phases_and_more_fabric_traffic(self):
        size = 512 * 1024 ** 2
        ag = all_gather(size)
        ar = all_reduce(size)
        assert ag.phases == 1 and ar.phases == 2
        assert ar.fabric_bytes() == pytest.approx(2 * ag.fabric_bytes())
        assert ar.timing().duration_s > ag.timing().duration_s

    def test_all_gather_has_no_flops(self):
        assert all_gather(1024 ** 2).flops() == 0.0
        assert all_reduce(1024 ** 2).flops() > 0.0

    def test_bandwidth_bound_stresses_fabric(self, spec):
        lb = all_gather(64 * 1024).activity_descriptor(spec)
        bb = all_gather(1024 ** 3).activity_descriptor(spec)
        assert bb.fabric_utilization > 0.8
        assert lb.fabric_utilization < 0.1
        assert bb.hbm_utilization > lb.hbm_utilization

    def test_collective_descriptor_mode_is_dma(self, spec):
        assert all_gather(1024 ** 3).activity_descriptor(spec).xcd_mode is XCDOccupancyMode.DMA

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            all_gather(0)

    def test_format_size(self):
        assert format_size(64 * 1024) == "64KB"
        assert format_size(512 * 1024 ** 2) == "512MB"
        assert format_size(1024 ** 3) == "1GB"


class TestLibrariesAndWorkloads:
    def test_rocblas_like_library(self):
        library = RocBLASLikeLibrary()
        assert library.square_gemm(4096).shape.m == 4096
        assert library.gemv(2048).shape.n == 1
        assert library.gemm(128, 256, 512).shape.k == 512

    def test_rccl_like_library(self):
        library = RCCLLikeLibrary()
        assert library.all_gather(1024).op is CollectiveOp.ALL_GATHER
        assert library.all_reduce(1024).op is CollectiveOp.ALL_REDUCE

    def test_paper_gemm_suite_names(self):
        names = [k.name for k in gemm_suite()]
        assert names == [
            "CB-8K-GEMM", "CB-4K-GEMM", "CB-2K-GEMM",
            "MB-8K-GEMV", "MB-4K-GEMV", "MB-2K-GEMV",
        ]

    def test_collective_suite_has_eight_kernels(self):
        suite = collective_suite()
        assert len(suite) == 8
        assert {k.name for k in suite} == {
            "AG-64KB", "AG-128KB", "AG-512MB", "AG-1GB",
            "AR-64KB", "AR-128KB", "AR-512MB", "AR-1GB",
        }

    def test_cb_and_mb_split(self, spec):
        assert all(k.is_compute_bound(spec) for k in cb_gemms())
        assert not any(k.is_compute_bound(spec) for k in mb_gemvs())

    def test_interleaving_scenarios_match_paper(self):
        labels = [s.label for s in interleaving_scenarios()]
        assert labels == ["CB->8K", "MB->2K", "CB->2K", "MB->8K gemv", "CB->4K gemv"]
        for scenario in interleaving_scenarios():
            assert scenario.preceding
            assert scenario.describe().startswith(scenario.label)
