"""Unit tests for the CPU/GPU clock domains."""

import numpy as np
import pytest

from repro.gpu.clocks import CPUClock, GPUTimestampCounter, SimulationClock
from repro.gpu.spec import ClockSpec


@pytest.fixture()
def sim_clock():
    return SimulationClock()


@pytest.fixture()
def counter(sim_clock):
    return GPUTimestampCounter(ClockSpec(), sim_clock, np.random.default_rng(0))


class TestSimulationClock:
    def test_starts_at_zero(self, sim_clock):
        assert sim_clock.now_s == 0.0

    def test_advance_accumulates(self, sim_clock):
        sim_clock.advance(1.5)
        sim_clock.advance(0.25)
        assert sim_clock.now_s == pytest.approx(1.75)

    def test_negative_advance_rejected(self, sim_clock):
        with pytest.raises(ValueError):
            sim_clock.advance(-1e-9)

    def test_advance_to_never_goes_backwards(self, sim_clock):
        sim_clock.advance(2.0)
        sim_clock.advance_to(1.0)
        assert sim_clock.now_s == pytest.approx(2.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(start_s=-1.0)


class TestCPUClock:
    def test_tracks_simulated_time(self, sim_clock):
        cpu = CPUClock(sim_clock)
        sim_clock.advance(0.125)
        assert cpu.now_s() == pytest.approx(0.125)


class TestGPUTimestampCounter:
    def test_epoch_offset_applied(self, counter):
        spec = counter.spec
        ticks = counter.ticks_at(0.0)
        assert ticks == pytest.approx(spec.epoch_offset_s * spec.timestamp_counter_hz, rel=1e-9)

    def test_roundtrip_ticks_to_time(self, counter):
        for t in (0.0, 0.001, 1.2345):
            ticks = counter.ticks_at(t)
            assert counter.sim_time_of_ticks(ticks) == pytest.approx(t, abs=2e-8)

    def test_monotonic_in_time(self, counter):
        times = np.linspace(0, 0.01, 50)
        ticks = [counter.ticks_at(t) for t in times]
        assert all(a < b for a, b in zip(ticks, ticks[1:]))

    def test_drift_changes_rate(self, sim_clock):
        drifting = GPUTimestampCounter(
            ClockSpec(drift_ppm=1000.0), sim_clock, np.random.default_rng(0)
        )
        nominal = GPUTimestampCounter(ClockSpec(), sim_clock, np.random.default_rng(0))
        span_drift = drifting.ticks_at(1.0) - drifting.ticks_at(0.0)
        span_nominal = nominal.ticks_at(1.0) - nominal.ticks_at(0.0)
        assert span_drift > span_nominal

    def test_read_delay_positive(self, counter):
        delays = [counter.sample_read_delay_s() for _ in range(200)]
        assert all(d > 0 for d in delays)
        assert np.mean(delays) == pytest.approx(
            counter.spec.timestamp_read_delay_s, rel=0.2
        )

    def test_read_from_cpu_advances_time(self, sim_clock, counter):
        before = sim_clock.now_s
        result = counter.read_from_cpu()
        assert sim_clock.now_s > before
        assert result.round_trip_s == pytest.approx(sim_clock.now_s - before)

    def test_read_from_cpu_captures_between_issue_and_return(self, sim_clock, counter):
        before = sim_clock.now_s
        result = counter.read_from_cpu()
        capture_time = counter.sim_time_of_ticks(result.gpu_ticks)
        assert before <= capture_time <= result.cpu_time_after_s


class TestHostReadDelegation:
    """Regression: a device-attached counter read used to advance the shared
    clock without recording power, stepping the thermal model or crediting
    the firmware accumulator -- leaving silent gaps in the power timeline."""

    def make_device(self, seed=9):
        from repro.gpu.device import SimulatedGPU
        from repro.gpu.spec import mi300x_spec

        return SimulatedGPU(mi300x_spec(), seed=seed)

    def test_device_counter_read_matches_device_read_timestamp(self):
        reading_via_counter = self.make_device().timestamp_counter.read_from_cpu()
        reading_via_device = self.make_device().read_timestamp()
        assert reading_via_counter == reading_via_device

    def test_mid_recording_read_leaves_no_gap_in_power_timeline(self):
        device = self.make_device()
        device.start_recording()
        device.idle(0.4e-3)
        before = device.now_s()
        result = device.timestamp_counter.read_from_cpu()
        assert device.now_s() == pytest.approx(before + result.round_trip_s)
        device.idle(0.4e-3)
        segments = device.stop_recording()
        # The round trip is covered by idle-power segments: consecutive
        # segments tile the recording with no holes.
        for a, b in zip(segments, segments[1:]):
            assert b.start_s == pytest.approx(a.end_s, abs=1e-12)
        assert segments[-1].end_s == pytest.approx(device.now_s())

    def test_mid_recording_read_cools_the_die(self):
        device = self.make_device()
        thermal = device.thermal
        thermal.reset(0.8)
        warmth_before = thermal.warmth
        device.timestamp_counter.read_from_cpu()
        assert thermal.warmth < warmth_before

    def test_standalone_counter_keeps_legacy_behaviour(self, sim_clock, counter):
        before = sim_clock.now_s
        result = counter.read_from_cpu()
        assert result.cpu_time_after_s == pytest.approx(sim_clock.now_s)
        assert sim_clock.now_s > before
