"""Equivalence tests: ExecutionTimeBinner.extend vs the pinned bin() reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binning import BinningResult, ExecutionTimeBinner


def assert_same_selection(incremental: BinningResult, reference: BinningResult) -> None:
    assert incremental.selected_indices == reference.selected_indices
    assert incremental.outlier_indices == reference.outlier_indices
    assert incremental.bin_low_s == reference.bin_low_s
    assert incremental.bin_high_s == reference.bin_high_s
    assert incremental.values_s == reference.values_s
    assert incremental.margin == reference.margin


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
@pytest.mark.parametrize("margin", [0.005, 0.02, 0.05, 0.25])
def test_randomized_topup_schedules_match_bin(seed, margin):
    """Random batch sizes, clustered values: every extend == bin-from-scratch."""
    rng = np.random.default_rng(seed)
    incremental = ExecutionTimeBinner(margin)
    reference = ExecutionTimeBinner(margin)
    values: list[float] = []
    remaining = 400
    while remaining > 0:
        batch_size = int(rng.integers(1, 40))
        batch_size = min(batch_size, remaining)
        remaining -= batch_size
        # A mixture of tight clusters and stragglers, with exact duplicates.
        cluster = float(rng.choice([100e-6, 101e-6, 130e-6, 200e-6]))
        batch = cluster * (1.0 + rng.normal(0, 0.01, size=batch_size))
        batch = np.abs(batch) + 1e-9
        if batch_size > 2:
            batch[1] = batch[0]  # force duplicates across the sort
        values.extend(float(v) for v in batch)
        assert_same_selection(incremental.extend(batch), reference.bin(values))
    assert incremental.num_values == len(values)


def test_single_batch_matches_bin():
    values = [100e-6, 104e-6, 99e-6, 250e-6, 101e-6]
    binner = ExecutionTimeBinner(0.05)
    assert_same_selection(binner.extend(values), ExecutionTimeBinner(0.05).bin(values))


def test_empty_followup_batch_reselects_current_state():
    binner = ExecutionTimeBinner(0.05)
    first = binner.extend([100e-6, 101e-6, 150e-6])
    again = binner.extend([])
    assert_same_selection(again, first)


def test_duplicate_heavy_input_matches_bin():
    values = [100e-6] * 20 + [105e-6] * 20 + [100e-6 * 1.05] * 5
    binner = ExecutionTimeBinner(0.05)
    assert_same_selection(binner.extend(values), ExecutionTimeBinner(0.05).bin(values))


def test_validation_matches_reference():
    binner = ExecutionTimeBinner(0.05)
    with pytest.raises(ValueError):
        binner.extend([])  # nothing accumulated yet
    with pytest.raises(ValueError):
        binner.extend([1e-6, -1e-6])


def test_tie_breaks_prefer_tighter_then_earlier_window():
    # Two windows of equal count; the tighter one must win in both paths.
    values = [100e-6, 100e-6, 200e-6, 209e-6]
    margin = 0.05
    incremental = ExecutionTimeBinner(margin).extend(values)
    reference = ExecutionTimeBinner(margin).bin(values)
    assert_same_selection(incremental, reference)
    assert incremental.selected_indices == (0, 1)
