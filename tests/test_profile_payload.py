"""Tests for the canonical columnar payload: NPZ/pickle codecs and spill.

Covers the ProfileColumns codec (`to_payload`/`from_payload`, `to_npz`/
`from_npz` with memory-mapped loads), the columnar `FineGrainProfile`
pickle/equality fast paths, the viz `profile_to_npz`/`profile_from_npz`
pair, and the sweep cache's sidecar spill.
"""

from __future__ import annotations

import dataclasses
import io
import pickle

import numpy as np
import pytest

from repro.core.profile import (
    FineGrainProfile,
    ProfileColumns,
    ProfileKind,
    ProfilePoint,
    load_npz_payload,
)
from repro.experiments import sweep as sweep_module
from repro.experiments.sweep import ProfileJob, SweepRunner, job_key, kernel_spec
from repro.viz.export import profile_from_npz, profile_to_npz


# --------------------------------------------------------------------------- #
# Column fixtures.
# --------------------------------------------------------------------------- #
def plain_columns(n: int = 16, seed: int = 0) -> ProfileColumns:
    rng = np.random.default_rng(seed)
    return ProfileColumns(
        time_s=np.sort(rng.uniform(0.0, 1.0, n)),
        run_index=rng.integers(0, 8, n),
        execution_index=rng.integers(0, 40, n),
        powers_w={
            "total": rng.uniform(300.0, 700.0, n),
            "xcd": rng.uniform(100.0, 400.0, n),
        },
    ).freeze()


def masked_columns(n: int = 24, seed: int = 1) -> ProfileColumns:
    rng = np.random.default_rng(seed)
    mask = rng.uniform(size=n) < 0.6
    mask[0] = True
    mask[1] = False
    values = rng.uniform(10.0, 90.0, n)
    values[~mask] = np.nan
    return ProfileColumns(
        time_s=np.sort(rng.uniform(0.0, 1.0, n)),
        run_index=rng.integers(0, 4, n),
        execution_index=rng.integers(0, 10, n),
        powers_w={"total": rng.uniform(300.0, 700.0, n), "hbm": values},
        masks={"hbm": mask},
    ).freeze()


def single_component_columns(n: int = 5) -> ProfileColumns:
    return ProfileColumns(
        time_s=np.linspace(0.0, 1.0, n),
        run_index=np.arange(n),
        execution_index=np.zeros(n, dtype=np.int64),
        powers_w={"total": np.linspace(400.0, 500.0, n)},
    ).freeze()


def large_columns(n: int = 100_000, seed: int = 7) -> ProfileColumns:
    rng = np.random.default_rng(seed)
    return ProfileColumns(
        time_s=np.sort(rng.uniform(0.0, 60.0, n)),
        run_index=rng.integers(0, 200, n),
        execution_index=rng.integers(0, 100, n),
        powers_w={
            "total": rng.uniform(300.0, 700.0, n),
            "xcd": rng.uniform(100.0, 400.0, n),
            "iod": rng.uniform(50.0, 120.0, n),
            "hbm": rng.uniform(40.0, 90.0, n),
        },
    ).freeze()


ALL_FIXTURES = {
    "empty": lambda: ProfileColumns.empty(),
    "single": single_component_columns,
    "plain": plain_columns,
    "masked": masked_columns,
    "large": large_columns,
}


def assert_columns_identical(a: ProfileColumns, b: ProfileColumns) -> None:
    """Bit-identity: equals() plus dtype and mask-structure checks."""
    assert a.equals(b) and b.equals(a)
    assert list(a.powers_w) == list(b.powers_w)  # order preserved, not just set
    assert set(a.masks) == set(b.masks)
    for mine, theirs in zip(a._arrays(), b._arrays()):
        assert mine.dtype == theirs.dtype
        # Raw bit-identity including NaN at masked-out positions.
        equal_nan = mine.dtype.kind == "f"
        assert np.array_equal(mine, theirs, equal_nan=equal_nan)


# --------------------------------------------------------------------------- #
# NPZ round trips.
# --------------------------------------------------------------------------- #
class TestNpzRoundTrip:
    @pytest.mark.parametrize("fixture", sorted(ALL_FIXTURES))
    @pytest.mark.parametrize("compressed", [False, True])
    def test_bit_identical(self, tmp_path, fixture, compressed):
        columns = ALL_FIXTURES[fixture]()
        path = columns.to_npz(tmp_path / f"{fixture}.npz", compressed=compressed)
        assert_columns_identical(columns, ProfileColumns.from_npz(path))

    @pytest.mark.parametrize("fixture", ["plain", "masked", "large"])
    def test_mmap_load_bit_identical_and_mapped(self, tmp_path, fixture):
        columns = ALL_FIXTURES[fixture]()
        path = columns.to_npz(tmp_path / "cols.npz", compressed=False)
        loaded = ProfileColumns.from_npz(path, mmap_mode="r")
        assert_columns_identical(columns, loaded)
        # Uncompressed (ZIP_STORED) members really map, copy nothing.
        assert isinstance(loaded.time_s, np.memmap)
        assert all(isinstance(v, np.memmap) for v in loaded.powers_w.values())

    def test_mmap_falls_back_on_compressed(self, tmp_path):
        columns = plain_columns()
        path = columns.to_npz(tmp_path / "cols.npz", compressed=True)
        loaded = ProfileColumns.from_npz(path, mmap_mode="r")
        assert_columns_identical(columns, loaded)
        assert not isinstance(loaded.time_s, np.memmap)

    def test_unknown_mmap_mode_rejected(self, tmp_path):
        path = plain_columns().to_npz(tmp_path / "cols.npz")
        with pytest.raises(ValueError, match="mmap_mode"):
            load_npz_payload(path, mmap_mode="r+")

    def test_payload_without_components_key_still_loads(self):
        # PR3-era exports carry no "components" member; the loader falls back
        # to scanning power_*_w keys.
        columns = masked_columns()
        payload = columns.to_payload()
        payload.pop("components")
        assert_columns_identical(columns, ProfileColumns.from_payload(payload))


class TestPickleRoundTrip:
    @pytest.mark.parametrize("fixture", sorted(ALL_FIXTURES))
    def test_bit_identical(self, fixture):
        columns = ALL_FIXTURES[fixture]()
        clone = pickle.loads(pickle.dumps(columns, protocol=pickle.HIGHEST_PROTOCOL))
        assert_columns_identical(columns, clone)


# --------------------------------------------------------------------------- #
# FineGrainProfile: pickle drops the points cache; __eq__ stays columnar.
# --------------------------------------------------------------------------- #
def profile_from(columns: ProfileColumns, kind=ProfileKind.SSP) -> FineGrainProfile:
    return FineGrainProfile(
        kernel_name="payload-test",
        kind=kind,
        execution_time_s=42e-6,
        metadata={"origin": "test"},
        columns=columns,
    )


class TestProfilePickle:
    def test_points_cache_not_pickled(self):
        profile = profile_from(plain_columns())
        _ = profile.points  # materialise (and cache) the legacy view
        assert profile._points is not None
        clone = pickle.loads(pickle.dumps(profile))
        assert clone._points is None  # cache dropped, columns only
        assert clone == profile
        assert clone.metadata == profile.metadata
        assert clone.kind is ProfileKind.SSP

    def test_pickle_size_unaffected_by_points_access(self):
        cold = profile_from(large_columns())
        warm = profile_from(large_columns())
        _ = warm.points
        assert len(pickle.dumps(warm)) == len(pickle.dumps(cold))

    def test_points_built_profile_round_trips_columnar(self):
        points = [
            ProfilePoint(time_s=0.1 * i, powers_w={"total": 400.0 + i}, run_index=i)
            for i in range(5)
        ]
        profile = FineGrainProfile(
            kernel_name="obj", kind=ProfileKind.SSE,
            points=points, execution_time_s=1e-5,
        )
        clone = pickle.loads(pickle.dumps(profile))
        assert clone == profile
        assert clone.points == profile.points


class TestProfileEquality:
    def test_columnar_eq_does_not_materialise_points(self):
        a = profile_from(plain_columns())
        b = profile_from(plain_columns())
        assert a == b
        assert a._points is None and b._points is None

    def test_columnar_eq_detects_differences(self):
        a = profile_from(plain_columns(seed=0))
        assert a != profile_from(plain_columns(seed=3))
        assert a != profile_from(masked_columns())
        assert profile_from(masked_columns()) == profile_from(masked_columns())

    def test_columnar_vs_points_built_falls_back_to_points(self):
        columns = plain_columns()
        columnar = profile_from(columns)
        object_based = FineGrainProfile(
            kernel_name="payload-test", kind=ProfileKind.SSP,
            points=columns.to_points(), execution_time_s=42e-6,
            metadata={"origin": "test"},
        )
        assert columnar == object_based

    def test_nan_at_present_position_unequal(self):
        n = 4
        base = dict(
            time_s=np.linspace(0, 1, n), run_index=np.arange(n),
            execution_index=np.zeros(n, dtype=np.int64),
        )
        values = np.array([1.0, np.nan, 3.0, 4.0])
        a = profile_from(ProfileColumns(powers_w={"total": values}, **base))
        b = profile_from(ProfileColumns(powers_w={"total": values.copy()}, **base))
        assert a != b  # NaN != NaN, matching the per-point dict semantics


# --------------------------------------------------------------------------- #
# viz export/import pair.
# --------------------------------------------------------------------------- #
class TestVizNpz:
    @pytest.mark.parametrize("compressed", [False, True])
    def test_round_trip(self, tmp_path, compressed):
        profile = profile_from(masked_columns(), kind=ProfileKind.RUN)
        path = profile_to_npz(profile, tmp_path / "p.npz", compressed=compressed)
        loaded = profile_from_npz(path, metadata={"origin": "test"})
        assert loaded == profile
        assert loaded.kernel_name == profile.kernel_name
        assert loaded.kind is ProfileKind.RUN
        assert loaded.execution_time_s == profile.execution_time_s

    def test_mmap_round_trip(self, tmp_path):
        profile = profile_from(large_columns())
        path = profile_to_npz(profile, tmp_path / "p.npz", compressed=False)
        loaded = profile_from_npz(path, mmap_mode="r", metadata={"origin": "test"})
        assert loaded == profile
        assert isinstance(loaded.columns().time_s, np.memmap)

    def test_legacy_export_without_components_key(self, tmp_path):
        # Pre-PR7 exports: same members minus the "components" ordering array.
        profile = profile_from(plain_columns())
        payload = profile.columns().to_payload()
        payload.pop("components")
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            kernel=np.asarray(profile.kernel_name),
            kind=np.asarray(profile.kind.value),
            execution_time_s=np.asarray(profile.execution_time_s),
            **payload,
        )
        loaded = profile_from_npz(path, metadata={"origin": "test"})
        assert loaded == profile

    def test_non_profile_archive_rejected(self, tmp_path):
        path = plain_columns().to_npz(tmp_path / "bare.npz")
        with pytest.raises(ValueError, match="missing"):
            profile_from_npz(path)

    def test_empty_profile_rejected(self, tmp_path):
        profile = profile_from(ProfileColumns.empty())
        with pytest.raises(ValueError, match="empty"):
            profile_to_npz(profile, tmp_path / "empty.npz")


# --------------------------------------------------------------------------- #
# The sweep cache's sidecar spill.
# --------------------------------------------------------------------------- #
SPILL_JOB = ProfileJob(
    job_id="payload-test/spill",
    kernel=kernel_spec("cb_gemm", 2048),
    runs=4,
    backend_seed=5,
    profiler_seed=105,
)


class TestCacheSpill:
    def entry(self, points: int) -> dict[str, object]:
        return {
            "big": profile_from(large_columns(points)),
            "small": profile_from(plain_columns()),
            "scalar": 7,
        }

    def test_round_trip_with_spill(self, tmp_path):
        runner = SweepRunner(workers=1, cache_dir=tmp_path, spill_points=1000)
        entry = self.entry(5000)
        runner._cache_store(SPILL_JOB, entry)
        sidecar = (tmp_path / f"{job_key(SPILL_JOB)}.pkl").with_suffix(".npz")
        assert sidecar.exists()  # the big profile left the pickle
        loaded = runner._cache_load(SPILL_JOB)
        assert loaded["big"] == entry["big"]
        assert loaded["small"] == entry["small"]
        assert loaded["scalar"] == 7
        # Spilled columns come back memory-mapped.
        assert isinstance(loaded["big"].columns().time_s, np.memmap)
        assert not isinstance(loaded["small"].columns().time_s, np.memmap)

    def test_pickle_shrinks_and_shared_columns_spill_once(self, tmp_path):
        profile = profile_from(large_columns(5000))
        entry = {"a": profile, "b": profile}  # shared object
        buffer = io.BytesIO()
        spilled = sweep_module._write_entry(entry, buffer, spill_points=1000)
        assert len(spilled) == 1  # deduplicated by identity
        plain = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        assert buffer.tell() < len(plain) / 10
        # And both references resolve to the same reloaded object.
        sidecar = tmp_path / "side.npz"
        with sidecar.open("wb") as handle:
            sweep_module._write_sidecar(spilled, handle)
        buffer.seek(0)
        loaded = sweep_module._ColumnSpillUnpickler(buffer, sidecar).load()
        assert loaded["a"] is loaded["b"]
        assert loaded["a"] == profile

    def test_no_sidecar_below_threshold(self, tmp_path):
        runner = SweepRunner(workers=1, cache_dir=tmp_path, spill_points=10**9)
        runner._cache_store(SPILL_JOB, self.entry(5000))
        assert not list(tmp_path.glob("*.npz"))
        assert runner._cache_load(SPILL_JOB)["scalar"] == 7

    def test_corrupt_sidecar_recomputes_not_crashes(self, tmp_path):
        runner = SweepRunner(workers=1, cache_dir=tmp_path, spill_points=1000)
        runner._cache_store(SPILL_JOB, self.entry(5000))
        sidecar = (tmp_path / f"{job_key(SPILL_JOB)}.pkl").with_suffix(".npz")
        sidecar.write_bytes(b"garbage")
        assert runner._cache_load(SPILL_JOB) is None  # falls through to recompute

    def test_missing_sidecar_recomputes_not_crashes(self, tmp_path):
        runner = SweepRunner(workers=1, cache_dir=tmp_path, spill_points=1000)
        runner._cache_store(SPILL_JOB, self.entry(5000))
        (tmp_path / f"{job_key(SPILL_JOB)}.pkl").with_suffix(".npz").unlink()
        assert runner._cache_load(SPILL_JOB) is None

    def test_spill_points_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FINGRAV_SPILL_POINTS", "123")
        assert SweepRunner(workers=1).spill_points == 123
        monkeypatch.setenv("FINGRAV_SPILL_POINTS", "not-a-number")
        assert SweepRunner(workers=1).spill_points == sweep_module._SPILL_POINTS_DEFAULT
        monkeypatch.delenv("FINGRAV_SPILL_POINTS")
        assert SweepRunner(workers=1, spill_points=5).spill_points == 5

    def test_schema2_entry_ignored_cleanly(self, tmp_path):
        # A schema-2 cache wrote plain pickles under the schema-2 key; the
        # schema-3 key differs, so the old entry is simply never looked up.
        old_key_payload = dataclasses.asdict(SPILL_JOB)
        old_key_payload.pop("job_id")
        old_key_payload.pop("profile_sections")  # field did not exist then
        import hashlib

        old_digest = hashlib.sha256(
            f"2:{sorted(old_key_payload.items())!r}".encode()
        ).hexdigest()
        (tmp_path / f"{old_digest}.pkl").write_bytes(
            pickle.dumps("schema-2 payload")
        )
        runner = SweepRunner(workers=1, cache_dir=tmp_path)
        assert old_digest != job_key(SPILL_JOB)
        assert runner._cache_load(SPILL_JOB) is None  # recompute, no crash

    def test_profile_sections_part_of_cache_key(self):
        assert job_key(SPILL_JOB) != job_key(
            dataclasses.replace(SPILL_JOB, profile_sections=("ssp",))
        )
