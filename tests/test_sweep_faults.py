"""Fault-tolerant sweep execution: the fault matrix, retries and the manifest.

Drives :class:`~repro.experiments.sweep.SweepRunner`'s supervised dispatcher
with the deterministic fault-injection harness (:mod:`repro.testing.faults`):
worker crashes recover via pool rebuilds, hung jobs hit the watchdog timeout
and retry, corrupt cache entries quarantine to a miss, and results stay
bit-identical with and without injected faults.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.sweep import (
    JobFailure,
    KernelSpec,
    ProfileJob,
    SweepConfig,
    SweepJobError,
    SweepRunner,
    backoff_delay,
    classify_retryable,
    default_runner,
    kernel_spec,
    main,
)
from repro.testing import faults
from repro.testing.faults import FaultPlan, FaultPlanError, FaultSpec


def small_jobs() -> list[ProfileJob]:
    return [
        ProfileJob(
            job_id="test/CB-2K-GEMM",
            kernel=kernel_spec("cb_gemm", 2048),
            runs=8,
            backend_seed=51,
            profiler_seed=151,
            max_additional_runs=24,
        ),
        ProfileJob(
            job_id="test/CB-4K-GEMM",
            kernel=kernel_spec("cb_gemm", 4096),
            runs=8,
            backend_seed=52,
            profiler_seed=152,
            max_additional_runs=24,
        ),
    ]


def fast_config(**overrides) -> SweepConfig:
    """Sweep config with near-zero backoff so fault tests stay quick."""
    settings = dict(
        job_timeout_s=5.0,
        max_retries=2,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        max_pool_rebuilds=4,
    )
    settings.update(overrides)
    return SweepConfig(**settings)


def plan(*specs: dict) -> FaultPlan:
    return FaultPlan.from_payload(list(specs))


def assert_result_maps_identical(left, right) -> None:
    assert set(left) == set(right)
    for job_id in left:
        a, b = left[job_id], right[job_id]
        for attribute in ("ssp_profile", "sse_profile", "run_profile"):
            pa, pb = getattr(a, attribute), getattr(b, attribute)
            assert len(pa) == len(pb)
            assert np.array_equal(pa.times(), pb.times())
            for component in pa.components:
                assert np.array_equal(pa.series(component), pb.series(component))
        assert a.golden_run_indices == b.golden_run_indices


@pytest.fixture(scope="module")
def clean_results():
    """The fault-free reference results every faulted sweep must reproduce."""
    return SweepRunner(workers=1, config=fast_config()).run(small_jobs())


# --------------------------------------------------------------------------- #
# The harness itself.
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_parse_roundtrip(self):
        original = plan(
            {"kind": "crash", "job_id": "a", "attempts": 2},
            {"kind": "hang", "match": "fig7/", "seconds": 30.0},
            {"kind": "exception", "retryable": False},
            {"kind": "cache_corrupt", "job_id": "b"},
        )
        assert FaultPlan.parse(original.to_json()) == original

    def test_object_form_with_faults_key(self):
        parsed = FaultPlan.parse('{"faults": [{"kind": "crash", "job_id": "a"}]}')
        assert parsed.faults[0].kind == "crash"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            plan({"kind": "meteor-strike"})

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown key"):
            plan({"kind": "crash", "jobid": "typo"})

    def test_missing_kind_and_bad_attempts_rejected(self):
        with pytest.raises(FaultPlanError, match="kind"):
            plan({"job_id": "a"})
        with pytest.raises(FaultPlanError, match="attempts"):
            plan({"kind": "crash", "attempts": 0})

    def test_malformed_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.parse("{nope")

    def test_match_semantics(self):
        spec = FaultSpec(kind="exception", match="fig7/", attempts=2)
        assert spec.matches_job("fig7/CB-2K-GEMM")
        assert not spec.matches_job("fig8/CB-2K-GEMM")
        exact = FaultSpec(kind="exception", job_id="fig7/CB-2K-GEMM")
        assert exact.matches_job("fig7/CB-2K-GEMM")
        assert not exact.matches_job("fig7/CB-4K-GEMM")

    def test_execute_fault_attempt_window(self):
        p = plan({"kind": "exception", "job_id": "a", "attempts": 2})
        assert p.execute_fault("a", 0) is not None
        assert p.execute_fault("a", 1) is not None
        assert p.execute_fault("a", 2) is None  # past its window: retry succeeds
        assert p.execute_fault("b", 0) is None

    def test_active_plan_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(faults.ENV_FAULT_PLAN, raising=False)
        assert faults.active_plan() is None
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, '[{"kind": "crash", "job_id": "a"}]')
        assert faults.active_plan().faults[0].kind == "crash"
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('[{"kind": "hang", "job_id": "b"}]')
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, f"@{plan_file}")
        assert faults.active_plan().faults[0].kind == "hang"
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "@/no/such/plan.json")
        with pytest.raises(FaultPlanError, match="cannot read"):
            faults.active_plan()

    def test_malformed_env_plan_aborts_the_sweep(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, "{nope")
        with pytest.raises(FaultPlanError):
            SweepRunner(workers=1).run(small_jobs()[:1])


# --------------------------------------------------------------------------- #
# Retry taxonomy, backoff, structured failures.
# --------------------------------------------------------------------------- #
class TestRetryTaxonomy:
    def test_transient_vs_fatal(self):
        assert classify_retryable(OSError(28, "No space left on device"))
        assert classify_retryable(TimeoutError("watchdog"))
        assert classify_retryable(faults.TransientInjectedFault("injected"))
        assert not classify_retryable(faults.InjectedFault("injected fatal"))
        assert not classify_retryable(KeyError("bad kernel"))
        assert not classify_retryable(ValueError("bad config"))
        assert not classify_retryable(MemoryError())

    def test_job_failure_captures_traceback(self):
        try:
            raise KeyError("no-such-kernel")
        except KeyError as exc:
            failure = JobFailure.from_exception(exc, attempts=3)
        assert failure.exc_type == "KeyError"
        assert failure.attempts == 3
        assert not failure.retryable
        assert "Traceback" in failure.traceback
        assert "no-such-kernel" in failure.describe()

    def test_legacy_description_adopted(self):
        failure = JobFailure.from_description("ValueError: boom\ntrace line")
        assert failure.exc_type == "ValueError"
        assert failure.message == "boom"
        assert failure.traceback == "trace line"


class TestBackoff:
    def test_deterministic_and_jittered(self):
        first = backoff_delay("job/a", 1, 0.25, 8.0)
        assert first == backoff_delay("job/a", 1, 0.25, 8.0)
        assert first != backoff_delay("job/b", 1, 0.25, 8.0)  # desynchronised
        assert 0.5 <= first < 0.75  # base*2 plus jitter in [0, base)

    def test_exponential_growth_capped(self):
        delays = [backoff_delay("job/a", n, 0.25, 1.0) for n in range(8)]
        assert delays[0] < delays[1] < delays[2]
        assert all(delay <= 1.0 for delay in delays)

    def test_zero_base_disables(self):
        assert backoff_delay("job/a", 5, 0.0, 8.0) == 0.0


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            SweepConfig(job_timeout_s=0)
        with pytest.raises(ValueError):
            SweepConfig(max_retries=-1)
        with pytest.raises(ValueError):
            SweepConfig(backoff_base_s=-0.1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("FINGRAV_JOB_TIMEOUT", "12.5")
        monkeypatch.setenv("FINGRAV_MAX_RETRIES", "5")
        monkeypatch.setenv("FINGRAV_RETRY_BACKOFF", "0.1")
        config = SweepConfig.from_env()
        assert config.job_timeout_s == 12.5
        assert config.max_retries == 5
        assert config.backoff_base_s == 0.1
        monkeypatch.setenv("FINGRAV_JOB_TIMEOUT", "off")
        assert SweepConfig.from_env().job_timeout_s is None
        monkeypatch.setenv("FINGRAV_JOB_TIMEOUT", "not-a-number")
        with pytest.raises(ValueError, match="FINGRAV_JOB_TIMEOUT"):
            SweepConfig.from_env()


class TestWorkersValidation:
    def test_runner_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            SweepRunner(workers=0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            SweepRunner(workers=-2)

    def test_default_runner_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv("FINGRAV_WORKERS", "0")
        with pytest.raises(ValueError, match="FINGRAV_WORKERS"):
            default_runner()
        monkeypatch.setenv("FINGRAV_WORKERS", "two")
        with pytest.raises(ValueError, match="FINGRAV_WORKERS"):
            default_runner()

    def test_cli_rejects_bad_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--experiments", "table1", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Inline (workers=1) retries.
# --------------------------------------------------------------------------- #
class TestInlineRetries:
    def test_transient_fault_retries_to_identical_result(self, clean_results):
        runner = SweepRunner(
            workers=1,
            config=fast_config(),
            fault_plan=plan({"kind": "exception", "job_id": "test/CB-2K-GEMM"}),
        )
        results = runner.run(small_jobs())
        assert_result_maps_identical(results, clean_results)
        ledger = runner.last_manifest["jobs"]["test/CB-2K-GEMM"]
        assert ledger["retries"] == 1
        assert ledger["attempts"] == 2
        assert ledger["status"] == "recomputed"
        untouched = runner.last_manifest["jobs"]["test/CB-4K-GEMM"]
        assert untouched["retries"] == 0

    def test_unhealing_transient_exhausts_retries(self):
        runner = SweepRunner(
            workers=1,
            config=fast_config(max_retries=2),
            fault_plan=plan(
                {"kind": "exception", "job_id": "test/CB-2K-GEMM", "attempts": 99}
            ),
        )
        with pytest.raises(SweepJobError) as excinfo:
            runner.run(small_jobs())
        failure = excinfo.value.failures["test/CB-2K-GEMM"]
        assert failure.retryable  # it was transient -- retries just ran out
        assert failure.attempts == 3  # initial + max_retries
        assert "Traceback" in failure.traceback
        # The sibling job still completed and is salvageable.
        assert set(excinfo.value.completed) == {"test/CB-4K-GEMM"}

    def test_fatal_injection_fails_without_retry(self):
        runner = SweepRunner(
            workers=1,
            config=fast_config(),
            fault_plan=plan(
                {"kind": "exception", "job_id": "test/CB-2K-GEMM", "retryable": False}
            ),
        )
        with pytest.raises(SweepJobError) as excinfo:
            runner.run(small_jobs()[:1])
        failure = excinfo.value.failures["test/CB-2K-GEMM"]
        assert failure.attempts == 1  # fatal: no retries burned
        assert not failure.retryable

    def test_crash_fault_inline_degrades_to_fatal_failure(self):
        # Killing the supervising process itself is never survivable; the
        # harness must refuse and surface a fatal failure instead.
        runner = SweepRunner(
            workers=1,
            config=fast_config(),
            fault_plan=plan({"kind": "crash", "job_id": "test/CB-2K-GEMM"}),
        )
        with pytest.raises(SweepJobError) as excinfo:
            runner.run(small_jobs()[:1])
        failure = excinfo.value.failures["test/CB-2K-GEMM"]
        assert failure.exc_type == "InjectedFault"
        assert "requires a worker pool" in failure.message


# --------------------------------------------------------------------------- #
# Cache corruption: quarantine to a miss, recompute, never abort.
# --------------------------------------------------------------------------- #
class TestCacheQuarantine:
    def test_injected_corruption_quarantines_and_recomputes(self, tmp_path, clean_results):
        cache_dir = tmp_path / "cache"
        warm = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())
        warm.run(small_jobs())
        corruption = plan({"kind": "cache_corrupt", "job_id": "test/CB-2K-GEMM"})
        faulted = SweepRunner(
            workers=1, cache_dir=cache_dir, config=fast_config(), fault_plan=corruption
        )
        results = faulted.run(small_jobs())
        assert_result_maps_identical(results, clean_results)
        assert faulted.cache_hits == 1  # the untargeted job still hit
        ledger = faulted.last_manifest["jobs"]["test/CB-2K-GEMM"]
        assert ledger["quarantined"] == 1
        assert ledger["status"] == "recomputed"
        assert list(cache_dir.glob("*.pkl.corrupt"))  # evidence retained
        # The recompute re-stored a healthy entry: a third sweep hits clean.
        replay = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())
        replay.run(small_jobs())
        assert replay.cache_hits == 2

    def test_manually_truncated_entry_quarantined(self, tmp_path):
        cache_dir = tmp_path / "cache"
        warm = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())
        warm.run(small_jobs()[:1])
        (entry,) = cache_dir.glob("*.pkl")
        entry.write_bytes(entry.read_bytes()[:10])  # truncated write
        retry = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())
        results = retry.run(small_jobs()[:1])
        assert retry.cache_hits == 0
        assert set(results) == {small_jobs()[0].job_id}
        assert entry.with_name(entry.name + ".corrupt").exists()
        # The recompute re-stored a healthy entry at the same path.
        replay = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())
        replay.run(small_jobs()[:1])
        assert replay.cache_hits == 1

    def test_corrupt_spill_sidecar_quarantines_both(self, tmp_path):
        cache_dir = tmp_path / "cache"
        warm = SweepRunner(
            workers=1, cache_dir=cache_dir, spill_points=1, config=fast_config()
        )
        warm.run(small_jobs()[:1])
        (sidecar,) = cache_dir.glob("*.npz")
        sidecar.write_bytes(b"not an npz")
        retry = SweepRunner(
            workers=1, cache_dir=cache_dir, spill_points=1, config=fast_config()
        )
        results = retry.run(small_jobs()[:1])
        assert retry.cache_hits == 0
        assert set(results) == {small_jobs()[0].job_id}
        assert list(cache_dir.glob("*.pkl.corrupt"))
        assert list(cache_dir.glob("*.npz.corrupt"))


# --------------------------------------------------------------------------- #
# Supervised pool execution: crashes, hangs, watchdog, pool rebuilds.
# --------------------------------------------------------------------------- #
class TestSupervisedFaults:
    def test_worker_crash_mid_sweep_recovers(self, clean_results):
        runner = SweepRunner(
            workers=2,
            config=fast_config(),
            fault_plan=plan({"kind": "crash", "job_id": "test/CB-2K-GEMM"}),
        )
        results = runner.run(small_jobs())
        assert_result_maps_identical(results, clean_results)
        manifest = runner.last_manifest
        assert manifest["counts"]["worker_crashes"] >= 1
        assert manifest["jobs"]["test/CB-2K-GEMM"]["retries"] >= 1
        assert manifest["counts"]["failed"] == 0

    def test_hung_job_times_out_and_retries(self, clean_results):
        runner = SweepRunner(
            workers=2,
            config=fast_config(job_timeout_s=1.5),
            fault_plan=plan(
                {"kind": "hang", "job_id": "test/CB-2K-GEMM", "seconds": 60.0}
            ),
        )
        results = runner.run(small_jobs())
        assert_result_maps_identical(results, clean_results)
        ledger = runner.last_manifest["jobs"]["test/CB-2K-GEMM"]
        assert ledger["timeouts"] >= 1
        assert ledger["retries"] >= 1
        assert ledger["status"] == "recomputed"

    def test_fatal_job_surfaces_through_the_pool(self):
        bad = ProfileJob(
            job_id="test/fatal",
            kernel=KernelSpec(key="no-such-kernel"),
            runs=4,
            backend_seed=1,
            profiler_seed=2,
        )
        runner = SweepRunner(workers=2, config=fast_config())
        with pytest.raises(SweepJobError) as excinfo:
            runner.run(small_jobs() + [bad])
        failure = excinfo.value.failures["test/fatal"]
        assert failure.exc_type == "KeyError"
        assert failure.attempts == 1
        assert "Traceback" in failure.traceback
        assert set(excinfo.value.completed) == {job.job_id for job in small_jobs()}

    def test_pool_rebuild_budget_bounds_a_crash_storm(self):
        # Every attempt crashes; the rebuild budget must terminate the sweep
        # with structured failures instead of looping forever.
        runner = SweepRunner(
            workers=2,
            config=fast_config(max_retries=1, max_pool_rebuilds=2),
            fault_plan=plan({"kind": "crash", "attempts": 99}),
        )
        with pytest.raises(SweepJobError) as excinfo:
            runner.run(small_jobs())
        assert set(excinfo.value.failures) == {job.job_id for job in small_jobs()}

    def test_results_identical_across_fault_matrix(self, clean_results):
        # One crash, one transient exception, minimal backoff: the faulted
        # parallel sweep must reproduce the fault-free serial sweep exactly.
        runner = SweepRunner(
            workers=2,
            config=fast_config(),
            fault_plan=plan(
                {"kind": "crash", "job_id": "test/CB-2K-GEMM"},
                {"kind": "exception", "job_id": "test/CB-4K-GEMM"},
            ),
        )
        results = runner.run(small_jobs())
        assert_result_maps_identical(results, clean_results)


# --------------------------------------------------------------------------- #
# The run manifest.
# --------------------------------------------------------------------------- #
class TestManifest:
    def test_written_next_to_cache_with_provenance(self, tmp_path):
        cache_dir = tmp_path / "cache"
        runner = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())
        runner.run(small_jobs())
        manifest_path = cache_dir / "manifest.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == 2
        assert manifest["workers"] == 1
        assert "engine" in manifest and "provider" in manifest["engine"]
        assert manifest["config"]["max_retries"] == 2
        assert manifest["counts"]["recomputed"] == 2
        for job in small_jobs():
            entry = manifest["jobs"][job.job_id]
            assert entry["status"] == "recomputed"
            assert entry["cache_stored"]
            assert entry["seconds"] > 0
        # Replay flips every job to a hit.
        replay = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())
        replay.run(small_jobs())
        manifest = json.loads(manifest_path.read_text())
        assert manifest["counts"]["hits"] == 2

    def test_last_manifest_populated_without_cache(self):
        runner = SweepRunner(workers=1, config=fast_config())
        runner.run(small_jobs()[:1])
        assert runner.manifest_path is None
        manifest = runner.last_manifest
        assert manifest["counts"]["recomputed"] == 1
        assert not manifest["interrupted"]

    def test_failed_jobs_recorded(self):
        runner = SweepRunner(
            workers=1,
            config=fast_config(),
            fault_plan=plan(
                {"kind": "exception", "job_id": "test/CB-2K-GEMM", "retryable": False}
            ),
        )
        with pytest.raises(SweepJobError):
            runner.run(small_jobs())
        manifest = runner.last_manifest
        assert manifest["counts"]["failed"] == 1
        entry = manifest["jobs"]["test/CB-2K-GEMM"]
        assert entry["status"] == "failed"
        assert "InjectedFault" in entry["error"]
        assert manifest["fault_plan"][0]["kind"] == "exception"

    def test_interrupt_flushes_partial_manifest(self, tmp_path, monkeypatch):
        import repro.experiments.sweep as sweep_module

        cache_dir = tmp_path / "cache"
        runner = SweepRunner(workers=1, cache_dir=cache_dir, config=fast_config())

        calls = {"n": 0}
        real = sweep_module.execute_job

        def interrupting(job):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(job)

        monkeypatch.setattr(sweep_module, "execute_job", interrupting)
        with pytest.raises(KeyboardInterrupt):
            runner.run(small_jobs())
        manifest = json.loads((cache_dir / "manifest.json").read_text())
        assert manifest["interrupted"]
        statuses = {job_id: entry["status"] for job_id, entry in manifest["jobs"].items()}
        assert statuses["test/CB-2K-GEMM"] == "recomputed"  # finished before ^C
        assert statuses["test/CB-4K-GEMM"] == "pending"
