"""Four-engine equivalence harness: compiled vs vectorized vs reference.

The contract is that every batched engine reproduces the retained per-slice
reference path: identical slice boundaries, RNG stream, executions and
firmware events.  Power values may differ from the *reference* by ~1 ulp
because idle-span warmth is relaxed once per span instead of once per slice
-- the tolerances below document that bound.  The compiled engine replays
the vectorized engine's iterated-float arithmetic exactly, so compiled vs
vectorized is pinned **bit for bit** with no tolerance at all.

Scenarios mirror the paper's workloads: pure idle, a short (single-slice)
kernel, a power-limited GEMM that throttles mid-execution, an interleaved
mix with a mid-recording timestamp read, and a long-idle park/unpark cycle
spanning hundreds of firmware control periods.

Every scenario is pinned across the full engine matrix: the compiled kernel
engine (Numba or the C mirror, whichever provider is active), the default
batched idle-span boundary engine, the retained per-period inline loop
(``_idle_batch_min_periods = inf``) and the per-slice reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import fastcore
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.device import PowerSegment, SegmentArray, SimulatedGPU
from repro.gpu.dvfs import FirmwareState
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm, mb_gemv

requires_compiled = pytest.mark.skipif(
    not fastcore.available(), reason="no compiled-kernel provider in this environment"
)

POWER_RTOL = 1e-9
POWER_ATOL = 1e-9

SPEC = mi300x_spec()
SHORT = cb_gemm(1024).activity_descriptor(SPEC)
BIG = cb_gemm(8192).activity_descriptor(SPEC)
GEMV = mb_gemv(4096).activity_descriptor(SPEC)


def device_pair(seed=123):
    return (
        SimulatedGPU(SPEC, seed=seed, vectorized=True),
        SimulatedGPU(SPEC, seed=seed, vectorized=False),
    )


def scenario_idle(device):
    device.park(12e-3)
    device.start_recording()
    device.idle(1.7e-3)
    device.idle(3e-6)
    device.idle(4.3e-3)


def scenario_short_kernel(device):
    device.park()
    device.start_recording()
    device.idle(1.5e-3)
    variation = device.draw_run_variation(SHORT)
    for _ in range(30):
        device.idle(1e-6)
        device.execute_kernel(SHORT, run_variation=variation)
    device.idle(1.3e-3)


def scenario_throttling_gemm(device):
    device.park()
    device.start_recording()
    device.idle(0.5e-3)
    for _ in range(6):
        device.execute_kernel(BIG)
    device.idle(1e-3)


def scenario_interleaved(device):
    device.park()
    device.start_recording()
    device.idle(1.5e-3)
    device.read_timestamp()
    for i in range(8):
        device.idle(2e-6)
        device.execute_kernel(GEMV if i % 2 else SHORT)
    device.idle(2.5e-3)
    device.execute_kernel(BIG)
    device.idle(0.7e-3)


def scenario_long_idle_park(device):
    """Hundreds of control periods idle: park mid-span, boost on arrival.

    The 80 ms span covers 320 control periods with the IDLE-park transition
    ~2 ms in; the following kernel exercises ``notify_kernel_arrival`` boost
    out of the parked state, and the second long span parks again.
    """
    device.park()
    device.start_recording()
    variation = device.draw_run_variation(SHORT)
    device.execute_kernel(SHORT, run_variation=variation)
    device.idle(80e-3)
    device.execute_kernel(SHORT, run_variation=variation)
    device.idle(45e-3)
    device.execute_kernel(SHORT, run_variation=variation)
    device.idle(2.2e-3)


SCENARIOS = {
    "idle": scenario_idle,
    "short_kernel": scenario_short_kernel,
    "throttling_gemm": scenario_throttling_gemm,
    "interleaved": scenario_interleaved,
    "long_idle_park": scenario_long_idle_park,
}


def segment_columns(segments):
    return (
        np.asarray([s.start_s for s in segments], dtype=float),
        np.asarray([s.end_s for s in segments], dtype=float),
        np.asarray(
            [[s.power.xcd_w, s.power.iod_w, s.power.hbm_w] for s in segments], dtype=float
        ),
    )


def assert_devices_equivalent(fast, reference, fast_segments, reference_segments):
    # Slice boundaries are bit-identical; powers agree to the documented
    # tolerance (closed-form idle-span warmth).
    assert isinstance(fast_segments, SegmentArray)
    ref_starts, ref_ends, ref_powers = segment_columns(reference_segments)
    assert len(fast_segments) == len(reference_segments)
    assert np.array_equal(fast_segments.starts_s, ref_starts)
    assert np.array_equal(fast_segments.ends_s, ref_ends)
    assert np.allclose(fast_segments.powers, ref_powers, rtol=POWER_RTOL, atol=POWER_ATOL)

    fast_executions = fast.executions()
    reference_executions = reference.executions()
    assert len(fast_executions) == len(reference_executions)
    for a, b in zip(fast_executions, reference_executions):
        assert a.kernel_name == b.kernel_name
        assert a.start_s == b.start_s
        assert a.end_s == b.end_s
        assert a.cold_caches == b.cold_caches
        assert a.mean_frequency_ghz == pytest.approx(b.mean_frequency_ghz, rel=1e-12)
        assert a.energy_j == pytest.approx(b.energy_j, rel=POWER_RTOL)
        assert a.mean_power.total_w == pytest.approx(b.mean_power.total_w, rel=POWER_RTOL)

    fast_events = fast.firmware_events()
    reference_events = reference.firmware_events()
    assert len(fast_events) == len(reference_events)
    for a, b in zip(fast_events, reference_events):
        assert a.time_s == b.time_s
        assert a.state is b.state
        assert a.frequency_ghz == b.frequency_ghz
        assert a.power_w == pytest.approx(b.power_w, rel=POWER_RTOL, abs=POWER_ATOL)
        assert np.isfinite(a.power_w)

    assert fast.now_s() == reference.now_s()
    assert fast.thermal.warmth == pytest.approx(reference.thermal.warmth, abs=1e-12)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_equivalence(name):
    scenario = SCENARIOS[name]
    fast, reference = device_pair()
    scenario(fast)
    scenario(reference)
    fast_segments = fast.stop_recording()
    reference_segments = reference.stop_recording()
    assert_devices_equivalent(fast, reference, fast_segments, reference_segments)


def assert_devices_bitwise_identical(compiled, vectorized, compiled_segments, vectorized_segments):
    """Compiled vs vectorized: no tolerance -- every float must match exactly."""
    assert np.array_equal(compiled_segments.starts_s, vectorized_segments.starts_s)
    assert np.array_equal(compiled_segments.ends_s, vectorized_segments.ends_s)
    assert np.array_equal(compiled_segments.powers, vectorized_segments.powers)
    assert compiled.executions() == vectorized.executions()
    compiled_events = compiled.firmware_events()
    vectorized_events = vectorized.firmware_events()
    assert len(compiled_events) == len(vectorized_events)
    for a, b in zip(compiled_events, vectorized_events):
        assert (a.time_s, a.state, a.frequency_ghz, a.power_w) == (
            b.time_s, b.state, b.frequency_ghz, b.power_w,
        )
    assert compiled.now_s() == vectorized.now_s()
    assert compiled.thermal.warmth == vectorized.thermal.warmth
    assert compiled._next_control_s == vectorized._next_control_s
    assert compiled.firmware.state is vectorized.firmware.state
    assert compiled.firmware.frequency_ghz == vectorized.firmware.frequency_ghz


@requires_compiled
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_equivalence_compiled(name):
    """The compiled engine is bit-identical to vectorized, tolerance-equal to
    the reference, on every scenario (including the long-idle park cycle)."""
    scenario = SCENARIOS[name]
    compiled = SimulatedGPU(SPEC, seed=123, engine="compiled")
    assert compiled.engine == "compiled"
    vectorized, reference = device_pair()
    for device in (compiled, vectorized, reference):
        scenario(device)
    compiled_segments = compiled.stop_recording()
    vectorized_segments = vectorized.stop_recording()
    reference_segments = reference.stop_recording()
    assert_devices_bitwise_identical(
        compiled, vectorized, compiled_segments, vectorized_segments
    )
    assert_devices_equivalent(compiled, reference, compiled_segments, reference_segments)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_equivalence_scalar_inline(name):
    """The retained per-period inline idle loop stays in lockstep too.

    ``_idle_batch_min_periods = inf`` disables the batched boundary engine,
    pinning the scalar path the batched engine replaced (and falls back to)
    against the per-slice reference.
    """
    scenario = SCENARIOS[name]
    fast, reference = device_pair()
    fast._idle_batch_min_periods = float("inf")
    scenario(fast)
    scenario(reference)
    fast_segments = fast.stop_recording()
    reference_segments = reference.stop_recording()
    assert_devices_equivalent(fast, reference, fast_segments, reference_segments)


def engine_matrix(seed=123):
    """Ordered engine matrix: [compiled,] batched, scalar-inline, reference.

    The compiled engine joins the matrix whenever a provider is available
    (the provider itself -- Numba or the C mirror -- is whatever fastcore
    auto-selected; both must pass the same pins).  ``reference`` is always
    last.
    """
    engines: dict[str, SimulatedGPU] = {}
    if fastcore.available():
        engines["compiled"] = SimulatedGPU(SPEC, seed=seed, engine="compiled")
    engines["batched"] = SimulatedGPU(SPEC, seed=seed, vectorized=True)
    scalar = SimulatedGPU(SPEC, seed=seed, vectorized=True)
    scalar._idle_batch_min_periods = float("inf")
    engines["scalar"] = scalar
    engines["reference"] = SimulatedGPU(SPEC, seed=seed, vectorized=False)
    return engines


def three_engines(seed=123):
    """Batched engine, pinned scalar-inline path, per-slice reference."""
    matrix = engine_matrix(seed)
    return matrix["batched"], matrix["scalar"], matrix["reference"]


class TestLongIdleParkUnpark:
    """The compiled engine, the batched idle-span engine, the inline path and
    the reference loop must agree bit for bit across a park/unpark/boost
    cycle spanning hundreds of control periods."""

    @pytest.fixture(scope="class")
    def driven(self):
        engines = engine_matrix()
        segments = {}
        for name, device in engines.items():
            scenario_long_idle_park(device)
            segments[name] = device.stop_recording()
        return engines, segments

    def test_park_and_boost_events_bitwise_identical(self, driven):
        engines, _ = driven
        reference_events = engines["reference"].firmware_events()
        # The cycle must actually exercise park -> boost -> park.
        states = [event.state for event in reference_events]
        assert states.count(FirmwareState.IDLE) >= 2
        assert FirmwareState.BOOST in states
        for name, device in engines.items():
            if name == "reference":
                continue
            events = device.firmware_events()
            assert len(events) == len(reference_events)
            for ours, refevent in zip(events, reference_events):
                assert ours.time_s == refevent.time_s
                assert ours.state is refevent.state
                assert ours.frequency_ghz == refevent.frequency_ghz
                assert ours.power_w == pytest.approx(
                    refevent.power_w, rel=POWER_RTOL, abs=POWER_ATOL
                )

    def test_segments_clock_and_warmth_pinned(self, driven):
        engines, segments = driven
        ref_segments = segments["reference"]
        assert len(segments["batched"]) > 500  # hundreds of control periods
        for name in engines:
            if name == "reference":
                continue
            assert_devices_equivalent(
                engines[name], engines["reference"], segments[name], ref_segments
            )
        # Batched vs scalar-inline: the idle grid must be the same floats.
        assert np.array_equal(segments["batched"].starts_s, segments["scalar"].starts_s)
        assert np.array_equal(segments["batched"].ends_s, segments["scalar"].ends_s)
        if "compiled" in engines:
            # Compiled vs batched: everything identical, powers included.
            assert_devices_bitwise_identical(
                engines["compiled"], engines["batched"],
                segments["compiled"], segments["batched"],
            )

    def test_firmware_bookkeeping_identical(self, driven):
        engines, _ = driven
        reference = engines["reference"]
        for name, device in engines.items():
            if name == "reference":
                continue
            assert device.firmware._idle_accum_s == reference.firmware._idle_accum_s
            assert device.firmware._overdraw_accum_s == reference.firmware._overdraw_accum_s
            assert device.firmware._last_power_w == pytest.approx(
                reference.firmware._last_power_w, rel=POWER_RTOL
            )


class TestExactBoundarySpans:
    """Audit pin for the 1e-12 boundary slack: a span ending exactly on (or
    within the slack of) a control boundary fires the firmware on the same
    boundary in the batched engine, the inline path and the reference loop,
    and the park transition lands on an identical boundary float."""

    @pytest.mark.parametrize("perturb_s", [0.0, 1e-12, -1e-12, 5e-13, -5e-13])
    def test_park_lands_on_same_boundary(self, perturb_s):
        engines = engine_matrix(seed=21)
        # The spans here are shorter than the batching crossover; force the
        # batched engine on so the chunk path itself faces the corner case
        # (the compiled engine has no threshold -- it always takes its
        # per-period kernel loop).
        engines["batched"]._idle_batch_min_periods = 1.0
        for device in engines.values():
            device.start_recording()
            device.execute_kernel(SHORT)
            # Idle exactly to a control boundary eleven periods out (plus a
            # sub-slack perturbation), then across the park threshold.
            period = device.spec.dvfs.control_period_s
            span = device._next_control_s + 10 * period - device.now_s() + perturb_s
            device.idle(span)
            device.idle(9 * period)
        reference = engines["reference"]
        reference_events = reference.firmware_events()
        park_times = [
            event.time_s for event in reference_events if event.state is FirmwareState.IDLE
        ]
        assert park_times, "scenario must park"
        for name, device in engines.items():
            if name == "reference":
                continue
            events = device.firmware_events()
            assert [
                (event.time_s, event.state, event.frequency_ghz) for event in events
            ] == [
                (event.time_s, event.state, event.frequency_ghz)
                for event in reference_events
            ]
            assert device.now_s() == reference.now_s()
            assert device._next_control_s == reference._next_control_s
        for device in engines.values():
            device.stop_recording()

    def test_span_ending_on_boundary_steps_firmware_once(self):
        # A span that ends bit-exactly on a boundary must consume that
        # boundary (next_control advances past it) in every engine, leaving
        # an empty control accumulator -- the audited invariant behind the
        # batched engine's chunk entry condition.
        engines = engine_matrix(seed=4)
        engines["batched"]._idle_batch_min_periods = 1.0
        for device in engines.values():
            device.execute_kernel(SHORT)
            span = device._next_control_s - device.now_s()
            device.idle(span)
            assert device.now_s() + 1e-12 >= device._next_control_s - \
                device.spec.dvfs.control_period_s
            assert device._next_control_s > device.now_s() + 1e-12
            assert device._control.time_s == 0.0
            assert device._control.energy_j == 0.0


class TestBackendEquivalence:
    """Full instrumented runs must agree record-for-record across engines."""

    @pytest.fixture(scope="class")
    def record_matrix(self):
        def one(engine):
            backend = SimulatedDeviceBackend(
                spec=SPEC, seed=11, config=BackendConfig(engine=engine)
            )
            assert backend.device.engine == engine
            kernel = cb_gemm(1024)
            records = [
                backend.run(kernel, executions=30, pre_delay_s=i * 0.7e-3, run_index=i)
                for i in range(3)
            ]
            records.append(
                backend.run(
                    kernel,
                    executions=10,
                    pre_delay_s=0.3e-3,
                    run_index=3,
                    preceding=[(mb_gemv(4096), 4)],
                )
            )
            return records

        engines = ["vectorized", "reference"]
        if fastcore.available():
            engines.insert(0, "compiled")
        return {engine: one(engine) for engine in engines}

    @staticmethod
    def pairs(record_matrix):
        reference = record_matrix["reference"]
        for engine, records in record_matrix.items():
            if engine != "reference":
                yield from zip(records, reference)

    def test_execution_timings_identical(self, record_matrix):
        for fast, reference in self.pairs(record_matrix):
            assert len(fast.executions) == len(reference.executions)
            for a, b in zip(fast.executions, reference.executions):
                assert a == b
            for a, b in zip(fast.preceding_executions, reference.preceding_executions):
                assert a == b

    def test_readings_match(self, record_matrix):
        for fast, reference in self.pairs(record_matrix):
            assert len(fast.readings) == len(reference.readings)
            for a, b in zip(fast.readings, reference.readings):
                assert a.gpu_timestamp_ticks == b.gpu_timestamp_ticks
                assert a.window_s == b.window_s
                assert a.total_w == pytest.approx(b.total_w, rel=POWER_RTOL)
                for component in ("xcd", "iod", "hbm"):
                    assert a.components[component] == pytest.approx(
                        b.components[component], rel=POWER_RTOL
                    )

    def test_anchor_and_metadata_identical(self, record_matrix):
        for fast, reference in self.pairs(record_matrix):
            assert fast.anchor == reference.anchor
            assert fast.pre_delay_s == reference.pre_delay_s
            assert fast.metadata["logger_start_cpu_s"] == reference.metadata["logger_start_cpu_s"]
            assert fast.metadata["logger_stop_cpu_s"] == reference.metadata["logger_stop_cpu_s"]
            assert (
                fast.metadata["run_variation_outlier"]
                == reference.metadata["run_variation_outlier"]
            )

    def test_compiled_readings_bitwise_equal_vectorized(self, record_matrix):
        if "compiled" not in record_matrix:
            pytest.skip("no compiled-kernel provider in this environment")
        for compiled, vectorized in zip(
            record_matrix["compiled"], record_matrix["vectorized"]
        ):
            assert list(compiled.executions) == list(vectorized.executions)
            for a, b in zip(compiled.readings, vectorized.readings):
                assert a.gpu_timestamp_ticks == b.gpu_timestamp_ticks
                assert a.total_w == b.total_w
                assert a.components == b.components


class TestDescriptorProfileCache:
    def test_cache_is_not_poisoned_across_specs(self):
        # Regression: the per-descriptor power-profile cache must be keyed by
        # the device's power model, or a descriptor first run on one spec
        # would replay that spec's utilisations on every later device.
        import dataclasses

        descriptor = cb_gemm(2048).activity_descriptor(SPEC)
        first = SimulatedGPU(SPEC, seed=1, vectorized=True)
        first.execute_kernel(descriptor)

        other_spec = dataclasses.replace(
            SPEC, power=dataclasses.replace(SPEC.power, xcd_stalled_floor=0.44,
                                            xcd_activity_floor=0.9)
        )
        fast = SimulatedGPU(other_spec, seed=2, vectorized=True)
        reference = SimulatedGPU(other_spec, seed=2, vectorized=False)
        fast_result = fast.execute_kernel(descriptor)
        reference_result = reference.execute_kernel(descriptor)
        assert fast_result.mean_power.total_w == pytest.approx(
            reference_result.mean_power.total_w, rel=POWER_RTOL
        )


class TestSegmentArray:
    def test_behaves_like_a_sequence_of_segments(self):
        fast, _ = device_pair()
        fast.start_recording()
        fast.idle(0.9e-3)
        fast.execute_kernel(SHORT)
        segments = fast.stop_recording()
        assert isinstance(segments, SegmentArray)
        assert len(segments) > 0
        first = segments[0]
        assert isinstance(first, PowerSegment)
        assert first.duration_s > 0
        assert [s.start_s for s in segments] == list(segments.starts_s)
        tail = segments[1:]
        assert isinstance(tail, SegmentArray)
        assert len(tail) == len(segments) - 1

    def test_equality_with_plain_segment_lists(self):
        fast, _ = device_pair()
        fast.start_recording()
        fast.idle(0.4e-3)
        segments = fast.stop_recording()
        assert segments == list(segments)
        assert segments == SegmentArray.from_segments(list(segments))
        assert not (segments == list(segments)[:-1])

    def test_empty_recording_equals_empty_list(self):
        fast, _ = device_pair()
        assert fast.stop_recording() == []

    def test_from_segments_round_trip(self):
        fast, _ = device_pair()
        fast.start_recording()
        fast.idle(0.6e-3)
        segments = fast.stop_recording()
        rebuilt = SegmentArray.from_segments([segments[i] for i in range(len(segments))])
        assert rebuilt == segments
